"""The sharded PEATS: N independent PBFT replica groups, one clock.

:class:`ShardedPEATS` is the first layer *above*
:class:`~repro.replication.service.ReplicatedPEATS`: it owns one replica
group per shard, all registered on one shared
:class:`~repro.replication.network.SimulatedNetwork` (so a scenario's
virtual clock, seed and fault schedule span the whole cluster), and routes
client operations to the group owning the tuple's name via a
:class:`~repro.cluster.routing.ShardMap`.

Scaling argument: every request still funnels through *a* primary, but
with ``N`` shards there are ``N`` primaries ordering disjoint request
streams in parallel — under a per-message processing cost the cluster's
aggregate throughput approaches ``N`` times one group's (the shard-count
sweep in ``benchmarks/bench_sim_scenarios.py`` measures exactly this).

Group namespacing: shard ``k``'s replicas are ``shard-k:replica-i``.
Groups never share an id, each group multicasts only within its own id
set, and every replica rejects protocol traffic from identities outside
its group, so the groups coexist on one network without cross-talk.
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping, TYPE_CHECKING, Union

from repro.errors import ReplicationError
from repro.obs import NULL_OBS
from repro.policy.policy import AccessPolicy
from repro.replication.network import NetworkConfig, SimulatedNetwork
from repro.replication.pbft import OrderingNode, ReplicaFaultMode
from repro.replication.service import ReplicatedPEATS
from repro.cluster.client import ShardedClient, ShardedClientView
from repro.cluster.routing import RoutingPolicy, ShardMap
from repro.tuples import Entry

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.net.transport import Transport

__all__ = ["ShardedPEATS"]


class ShardedPEATS:
    """A policy-enforced tuple space sharded across PBFT replica groups."""

    def __init__(
        self,
        policy: AccessPolicy,
        *,
        shards: int = 2,
        f: int = 1,
        routing: RoutingPolicy | None = None,
        network_config: NetworkConfig | None = None,
        network: "Transport | None" = None,
        replica_faults: Mapping[Union[int, tuple[int, int]], ReplicaFaultMode] | None = None,
        view_change_timeout: float = 50.0,
        max_batch_size: int = 8,
        checkpoint_interval: int = 8,
        txn_ttl_ops: int | None = None,
        obs: Any = None,
    ) -> None:
        """``replica_faults`` keys may be ``(shard, index)`` pairs or flat
        node indexes (``shard = index // (3f + 1)``), matching how the
        fault schedules address nodes.

        ``network`` swaps the substrate: by default the cluster builds a
        fresh :class:`SimulatedNetwork`, but any
        :class:`~repro.net.transport.Transport` drops in.  On a real
        multi-reactor transport each shard's replicas are pinned to
        reactor ``shard % reactor_count`` **before** the groups register,
        so every replica group runs on its own event loop and the
        cluster's parallelism does not funnel through one reactor.
        """
        if shards < 1:
            raise ReplicationError("a cluster needs at least one shard")
        if network is not None and network_config is not None:
            raise ReplicationError(
                "pass either a shared network or a network_config, not both"
            )
        self.f = f
        self._policy = policy
        self._shard_map = ShardMap(shards, routing)
        self._network = network or SimulatedNetwork(network_config or NetworkConfig())
        #: Observability bundle shared by every shard's replica group.
        self.obs = NULL_OBS if obs is None else obs
        group_size = 3 * f + 1
        pin = getattr(self._network, "pin", None)
        reactor_count = getattr(self._network, "reactor_count", 1)
        if pin is not None and reactor_count > 1:
            for shard in range(shards):
                for index in range(group_size):
                    pin(f"shard-{shard}:replica-{index}", shard % reactor_count)
        per_group: list[dict[int, ReplicaFaultMode]] = [{} for _ in range(shards)]
        for key, mode in (replica_faults or {}).items():
            if isinstance(key, tuple):
                shard, index = key
            else:
                shard, index = divmod(key, group_size)
            if not 0 <= shard < shards or not 0 <= index < group_size:
                raise ReplicationError(
                    f"replica fault target {key!r} is outside the cluster "
                    f"({shards} shards of {group_size} replicas)"
                )
            per_group[shard][index] = mode
        self._groups = tuple(
            ReplicatedPEATS(
                policy,
                f=f,
                network=self._network,
                group=f"shard-{shard}",
                replica_faults=per_group[shard],
                view_change_timeout=view_change_timeout,
                max_batch_size=max_batch_size,
                checkpoint_interval=checkpoint_interval,
                txn_ttl_ops=txn_ttl_ops,
                obs=self.obs,
            )
            for shard in range(shards)
        )
        self._clients: dict[Hashable, ShardedClient] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def policy(self) -> AccessPolicy:
        return self._policy

    @property
    def network(self) -> "Transport":
        return self._network

    @property
    def shard_map(self) -> ShardMap:
        return self._shard_map

    @property
    def n_shards(self) -> int:
        return self._shard_map.n_shards

    @property
    def groups(self) -> tuple[ReplicatedPEATS, ...]:
        return self._groups

    def group(self, shard: int) -> ReplicatedPEATS:
        """The replica group owning ``shard``."""
        if not 0 <= shard < len(self._groups):
            raise ReplicationError(f"no shard {shard!r} in this cluster")
        return self._groups[shard]

    def group_of(self, name: Hashable) -> ReplicatedPEATS:
        """The replica group owning tuple name ``name``."""
        return self._groups[self._shard_map.shard_of(name)]

    @property
    def nodes(self) -> tuple[OrderingNode, ...]:
        """Every ordering node of the cluster, in shard order.

        Flat indexing matches the fault schedules' integer addressing:
        node ``i`` lives on shard ``i // (3f + 1)``.
        """
        return tuple(node for group in self._groups for node in group.nodes)

    @property
    def replica_ids(self) -> tuple[str, ...]:
        return tuple(rid for group in self._groups for rid in group.replica_ids)

    def correct_nodes(self) -> list[OrderingNode]:
        return [node for group in self._groups for node in group.correct_nodes()]

    def check_timeouts(self) -> None:
        """Fire every group's view-change timers (simulated time)."""
        for group in self._groups:
            group.check_timeouts()

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------

    def client(self, process: Hashable) -> ShardedClient:
        """The routing request/reply client for ``process`` (one network
        registration, shared by every shard)."""
        if process not in self._clients:
            # repro-lint: disable=RL006 — one routing client per process
            # identity; processes are the deployment's principals, not
            # per-request state (each also holds a network registration).
            self._clients[process] = ShardedClient(process, self)
        return self._clients[process]

    def client_view(self, process: Hashable) -> ShardedClientView:
        """A tuple-space view through which ``process`` issues operations."""
        return ShardedClientView(self, process)

    # ------------------------------------------------------------------
    # Administrative introspection (tests, benchmarks)
    # ------------------------------------------------------------------

    def snapshot(self) -> tuple[Entry, ...]:
        """The union of every shard's space, in shard order.

        Each shard's slice comes from that group's most advanced correct
        replica (the single-group rule); tuples never move between shards,
        so concatenation is exact.
        """
        merged: list[Entry] = []
        for group in self._groups:
            merged.extend(group.snapshot())
        return tuple(merged)

    def replica_state_digests(self) -> dict[str, str]:
        """State digest per replica across all groups (ids are namespaced)."""
        digests: dict[str, str] = {}
        for group in self._groups:
            digests.update(group.replica_state_digests())
        return digests

    def stable_checkpoints(self) -> dict[str, int]:
        checkpoints: dict[str, int] = {}
        for group in self._groups:
            checkpoints.update(group.stable_checkpoints())
        return checkpoints

    def client_statistics(self) -> dict[str, int]:
        """Counters summed over every routing client of the cluster —
        what the health monitor's reply-divergence probe samples."""
        totals = {
            "requests": 0,
            "retransmissions": 0,
            "mismatched_replies": 0,
            "quorum_failures": 0,
        }
        for client in self._clients.values():
            for name, value in client.statistics.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def shard_statistics(self) -> dict[int, dict[str, Any]]:
        """Per-shard ordering progress (executed sequences, views, ...)."""
        stats: dict[int, dict[str, Any]] = {}
        for shard, group in enumerate(self._groups):
            stats[shard] = {
                "last_executed": max(node.last_executed for node in group.nodes),
                "stable_checkpoint": max(node.stable_checkpoint for node in group.nodes),
                "views": tuple(node.view for node in group.nodes),
            }
        return stats

    def __repr__(self) -> str:
        return (
            f"ShardedPEATS(policy={self._policy.name!r}, shards={self.n_shards}, "
            f"f={self.f}, replicas={self.n_shards * (3 * self.f + 1)})"
        )
