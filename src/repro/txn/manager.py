"""Client-side transaction machinery: the ``Txn`` handle and the driver.

``Space.transact()`` returns a :class:`Txn` — a staging buffer of legs
(:mod:`repro.txn.legs`) with a one-shot commit.  How the commit executes
depends on the deployment shape, in three tiers of the same semantics:

* **local** — the whole leg sequence resolves and applies under the PEATS
  object lock (one linearization point);
* **one replica group** (replicated backend, or a sharded commit whose
  legs all route to one shard) — a single ordered ``txn_exec`` request:
  the group's PBFT instance *is* the atomicity;
* **cross-shard** — :class:`CrossShardTxn`, the replicated-coordinator
  atomic commit.  The coordinator group (the lowest participant shard,
  deterministic from the involved names) orders ``txn_prepare`` through
  its own PBFT instance; the owner then fans ``txn_vote`` to every
  participant group, where a lock-or-refuse decision is *ordered through
  that group's PBFT instance* with policy enforced per leg; all-yes votes
  are certified by ``f + 1`` matching ``TxnVote`` pushes per group and
  submitted as evidence with the ``txn_decision``; the authoritative
  outcome (first ordered decision wins — a racing lock-expiry
  ``txn_force`` may have aborted first) is then applied at every
  participant, which releases the locks.

The protocol is **non-blocking** in the 3PC sense that matters here: a
vanished owner cannot wedge a name forever, because every lock carries an
expiration in its replica group's ordered-operation counter and any
blocked client may then resolve the transaction at its replicated
coordinator (``txn_force`` — abort iff undecided).  Replication does the
rest: the coordinator is not a process but a ``3f + 1`` PBFT group, so
coordinator *crashes* below the fault bound never block the protocol
either.

The driver is continuation-style throughout (completion callbacks on the
network event loop), so many transactions — and ordinary operations —
stay in flight concurrently under one virtual clock.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Hashable, Optional, Sequence, TYPE_CHECKING

from repro.errors import (
    CrossShardError,
    QuorumError,
    ReplicationError,
    TxnAbortedError,
)
from repro.futures import OperationFuture
from repro.peo.base import DENIED
from repro.replication.messages import TxnDecision, TxnVote
from repro.txn.legs import normalize_leg, normalize_legs
from repro.tuples import Entry, Template
from repro.tuples.fields import is_defined

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.api.space import Space
    from repro.cluster.routing import ShardMap

__all__ = [
    "Txn",
    "TxnOutcome",
    "CrossShardTxn",
    "outcome_from_payload",
    "plan_legs",
    "leg_shards",
    "locked_conflict",
]


@dataclasses.dataclass(frozen=True)
class TxnOutcome:
    """The resolved fate of one committed-or-aborted transaction.

    ``results`` holds one slot per staged leg (in staging order) when the
    transaction committed: the inserted entry for ``out``, the matched
    entry for ``rd``/``in``, ``(inserted, existing)`` for ``cas`` and
    ``None`` for ``nix``.  ``reason`` is the wire-safe abort reason
    otherwise.  The outcome is truthy iff committed.
    """

    committed: bool
    reason: Any
    results: tuple

    def __bool__(self) -> bool:
        return self.committed

    def raise_for_abort(self) -> "TxnOutcome":
        """Return self when committed, raise :class:`TxnAbortedError` else."""
        if not self.committed:
            raise TxnAbortedError(
                f"transaction aborted: {self.reason!r}", reason=self.reason
            )
        return self


def outcome_from_payload(payload: Any) -> TxnOutcome:
    """Convert a commit future's reply payload into a :class:`TxnOutcome`."""
    if isinstance(payload, tuple) and len(payload) == 2:
        status, value = payload
        if status == "OK" and isinstance(value, tuple) and value:
            if value[0] == "committed":
                return TxnOutcome(True, None, tuple(value[1]))
            if value[0] == "aborted":
                return TxnOutcome(False, value[1], ())
        if status == DENIED:
            return TxnOutcome(False, ("denied", value), ())
    raise ReplicationError(f"malformed transaction payload: {payload!r}")


def locked_conflict(reason: Any) -> Optional[tuple]:
    """The ``(txn_key, coordinator_shard, expired)`` conflict inside a
    ``("locked", ...)`` abort reason, or ``None`` for other reasons."""
    if (
        isinstance(reason, tuple)
        and len(reason) == 4
        and reason[0] == "locked"
    ):
        return tuple(reason[1:])
    return None


class Txn:
    """A staged transaction over one :class:`~repro.api.space.Space`.

    Staging methods chain (``txn.in_(t).out(e)``); :meth:`submit_commit`
    seals the staging and returns the one-shot commit future (idempotent
    — later calls return the same future), :meth:`commit` drives it to a
    :class:`TxnOutcome`.
    """

    def __init__(self, space: "Space", process: Hashable = None) -> None:
        self._space = space
        self._process = process
        self._legs: list[tuple] = []
        self._future: Optional[OperationFuture] = None

    @property
    def process(self) -> Hashable:
        return self._process

    @property
    def legs(self) -> tuple:
        return tuple(self._legs)

    def _stage(self, leg: tuple) -> "Txn":
        if self._future is not None:
            raise ReplicationError("transaction already submitted; stage a new one")
        self._legs.append(normalize_leg(leg))
        return self

    def out(self, entry: Entry) -> "Txn":
        """Stage an insert, applied at commit."""
        return self._stage(("out", entry))

    def rd(self, template: Template) -> "Txn":
        """Stage a precondition read: no match at vote time aborts."""
        return self._stage(("rd", template))

    def in_(self, template: Template) -> "Txn":
        """Stage a precondition consume: the match is taken at commit."""
        return self._stage(("in", template))

    def cas(self, template: Template, entry: Entry) -> "Txn":
        """Stage a conditional swap (never aborts; pins match or absence)."""
        return self._stage(("cas", template, entry))

    def nix(self, template: Template) -> "Txn":
        """Stage a required *absence*: a match at vote time aborts (with
        the matched entry in the reason) — the wildcard-``cas`` building
        block."""
        return self._stage(("nix", template))

    def submit_commit(self) -> OperationFuture:
        """Seal the staging and submit the atomic commit (idempotent)."""
        if self._future is None:
            if not self._legs:
                raise ReplicationError(
                    "transaction has no legs; stage at least one operation "
                    "before committing"
                )
            legs = normalize_legs(self._legs)
            self._future = self._space._submit_txn_tracked(legs, self._process)
        return self._future

    def commit(self) -> TxnOutcome:
        """Submit (if needed), drive to completion, return the outcome."""
        future = self.submit_commit()
        self._space._drive(future)
        return outcome_from_payload(future.result())

    def __repr__(self) -> str:
        state = "submitted" if self._future is not None else "staging"
        return f"Txn(legs={len(self._legs)}, {state})"


# ----------------------------------------------------------------------
# Leg placement on a sharded cluster
# ----------------------------------------------------------------------


def leg_shards(shard_map: "ShardMap", leg: tuple) -> tuple[int, ...]:
    """The shard(s) a staged leg executes on.

    ``out``/``rd``/``in`` route by their (concrete) name; a wildcard-name
    ``nix`` fans to *every* shard (absence is a whole-space property); a
    ``cas`` leg routes to its **entry's** shard — its template pin covers
    that shard only, so whole-space conditions pair it with ``nix`` legs
    (exactly what the public wildcard ``cas`` stages).
    """
    operation = leg[0]
    if operation == "out":
        return (shard_map.shard_of(leg[1].fields[0]),)
    if operation in ("rd", "in"):
        name = leg[1].fields[0]
        if not is_defined(name):
            raise CrossShardError(
                f"transactional {operation} leg {leg!r} has a wildcard name "
                "field and no single owning shard; locate the tuple with a "
                "scatter-gather rdp first, or require absence with nix legs"
            )
        return (shard_map.shard_of(name),)
    if operation == "nix":
        name = leg[1].fields[0]
        if not is_defined(name):
            return tuple(range(shard_map.n_shards))
        return (shard_map.shard_of(name),)
    # cas: the entry's shard owns the leg; a concrete template must agree.
    entry_shard = shard_map.shard_of(leg[2].fields[0])
    template_name = leg[1].fields[0]
    if is_defined(template_name) and shard_map.shard_of(template_name) != entry_shard:
        raise CrossShardError(
            f"cas leg template {leg[1]!r} and entry {leg[2]!r} route to "
            "different shards; stage a nix leg on the template's shard and "
            "an out leg on the entry's shard instead (Space.cas composes "
            "this automatically)"
        )
    return (entry_shard,)


def plan_legs(shard_map: "ShardMap", legs: Sequence[tuple]) -> dict[int, list]:
    """Group legs by executing shard: ``{shard: [(index, leg), ...]}``.

    Indexes are the original staging positions, preserved per shard in
    staging order — what reassembles per-shard results into the caller's
    result vector.  A wildcard ``nix`` contributes the same index to
    several shards (each reports ``None``).
    """
    plan: dict[int, list] = {}
    for index, leg in enumerate(legs):
        for shard in leg_shards(shard_map, leg):
            plan.setdefault(shard, []).append((index, leg))
    return plan


# ----------------------------------------------------------------------
# The cross-shard commit driver
# ----------------------------------------------------------------------


class CrossShardTxn:
    """One cross-shard atomic commit, driven by completion callbacks.

    The owner is a *relay*, never a trust root: every protocol step is
    ordered through a participant's own PBFT instance and accepted on an
    ``f + 1`` reply vote; commit evidence is assembled from ``f + 1``
    matching ``TxnVote`` pushes per group; and the outcome the driver
    applies is the coordinator's *ordered* decision, not its own
    preference — a racing lock-expiry ``txn_force`` may have aborted
    first, and first-ordered-wins makes that race safe.

    A decision learned through the push channel alone (a resolver
    force-aborted us while we were still voting) is honoured only as an
    ``f + 1`` push certificate and applied against the driver's **own**
    participant set — never the set a push claims.
    """

    #: Whole-transaction retries after a ``("locked", ...)`` refusal.
    MAX_ATTEMPTS = 8
    #: Evidence-gathering fallback rounds (idempotent re-votes re-push).
    MAX_REVOTE_ROUNDS = 8
    #: Backend-time delay before an evidence-gathering re-vote round.
    REVOTE_DELAY = 200.0

    def __init__(self, space: "Space", process: Hashable, legs: tuple) -> None:
        self.space = space
        self.process = process
        self.legs = tuple(legs)
        self.client = space.service.client(process)
        self.future = OperationFuture(operation="txn", submitted_at=space._now())
        self.attempts = 0
        self.txn_id: Optional[tuple] = None
        self._begin()

    # ------------------------------------------------------------------
    # Attempt lifecycle
    # ------------------------------------------------------------------

    def _begin(self) -> None:
        self.attempts += 1
        self.plan = plan_legs(self.space.service.shard_map, self.legs)
        self.participants = tuple(sorted(self.plan))
        self.coordinator = self.participants[0]
        self.txn_id = self.client.mint_txn_id()
        self.stage = "prepare"
        self.votes: dict[int, tuple] = {}
        self.applied: dict[int, tuple] = {}
        self.decided_outcome: Optional[str] = None
        self.outcome_reason: Any = None
        self.forced: Optional[tuple] = None
        self.revote_rounds = 0
        self.revote_pending = False
        self.client.watch_txn(self.txn_id, self._on_push)
        self._submit(
            self.coordinator,
            "txn_prepare",
            (self.txn_id, self.participants),
            self._on_prepared,
        )

    def _submit(
        self, shard: int, operation: str, arguments: tuple, on_complete: Callable
    ) -> None:
        group = self.space.service.group(shard)
        self.client.submit(
            operation,
            arguments,
            replica_ids=group.replica_ids,
            on_complete=on_complete,
        )

    def _payload(self, reply: OperationFuture) -> Optional[tuple]:
        """Unwrap one sub-request reply; fails/aborts the commit on bad ones."""
        if reply.exception is not None:
            self._fail(reply.exception)
            return None
        payload = reply.result()
        if not isinstance(payload, tuple) or len(payload) != 2:
            self._fail(ReplicationError(f"malformed transaction reply: {payload!r}"))
            return None
        if payload[0] == DENIED:
            # A refused sub-operation (malformed arguments, unsupported op)
            # is a deterministic abort, not a protocol failure.
            self._complete_aborted(("denied", payload[1]))
            return None
        return payload

    def _fail(self, exception: BaseException) -> None:
        if self.future.done:
            return
        if self.txn_id is not None:
            self.client.unwatch_txn(self.txn_id)
        self.future._complete(self.space._now(), exception=exception)

    def _complete(self, payload: tuple) -> None:
        if self.future.done:
            return
        self.client.unwatch_txn(self.txn_id)
        self.future._complete(self.space._now(), result=payload)

    def _complete_aborted(self, reason: Any) -> None:
        self._complete(("OK", ("aborted", reason)))

    # ------------------------------------------------------------------
    # Prepare → vote
    # ------------------------------------------------------------------

    def _on_prepared(self, reply: OperationFuture) -> None:
        if self.future.done or self.stage != "prepare":
            return
        payload = self._payload(reply)
        if payload is None:
            return
        value = payload[1]
        if not isinstance(value, tuple) or not value or value[0] != "prepared":
            self._fail(ReplicationError(f"transaction prepare refused: {payload!r}"))
            return
        self.stage = "vote"
        for shard in self.participants:
            shard_legs = tuple(leg for _index, leg in self.plan[shard])
            self._submit(
                shard,
                "txn_vote",
                (self.txn_id, self.coordinator, shard, shard_legs),
                lambda reply, shard=shard: self._on_vote(shard, reply),
            )

    def _on_vote(self, shard: int, reply: OperationFuture) -> None:
        if self.future.done or self.stage not in ("vote", "evidence"):
            return
        payload = self._payload(reply)
        if payload is None:
            return
        value = payload[1]
        if not isinstance(value, tuple) or len(value) != 4 or value[0] != "vote":
            self._fail(ReplicationError(f"malformed vote reply: {payload!r}"))
            return
        self.votes[shard] = (value[1], value[2])
        if len(self.votes) < len(self.participants):
            return
        if self.forced is not None:
            # A resolver decided this transaction while we were voting;
            # with every vote reply in, the per-group request channels are
            # free and the certified outcome can be applied.
            self._apply_forced()
            return
        refusing = [s for s in self.participants if self.votes[s][0] != "yes"]
        if refusing:
            self._abort_protocol(self.votes[refusing[0]][1])
            return
        self.stage = "evidence"
        self._try_decide()

    # ------------------------------------------------------------------
    # Evidence → decision
    # ------------------------------------------------------------------

    def _try_decide(self) -> None:
        """Assemble f+1 yes-certificates per group and submit the commit."""
        if self.future.done or self.stage != "evidence":
            return
        evidence = []
        for shard in self.participants:
            certificate = self.client.txn_push_vote(self.txn_id, TxnVote, shard=shard)
            if certificate is None or certificate[0].vote != "yes":
                self._request_missing_votes()
                return
            _push, replicas = certificate
            evidence.append((shard, "yes", tuple(replicas)))
        self.stage = "decide"
        self._submit(
            self.coordinator,
            "txn_decision",
            (self.txn_id, "commit", None, tuple(evidence)),
            self._on_decided,
        )

    def _request_missing_votes(self) -> None:
        """Fallback when vote pushes lag the reply vote: re-submit the
        (idempotent) votes, which makes every correct replica re-push."""
        if self.revote_pending:
            return
        self.revote_rounds += 1
        if self.revote_rounds > self.MAX_REVOTE_ROUNDS:
            self._fail(
                QuorumError(
                    f"no f+1 vote certificates for transaction {self.txn_id} "
                    f"after {self.MAX_REVOTE_ROUNDS} re-vote rounds"
                )
            )
            return
        self.revote_pending = True

        def revote() -> None:
            self.revote_pending = False
            if self.future.done or self.stage != "evidence":
                return
            for shard in self.participants:
                certificate = self.client.txn_push_vote(
                    self.txn_id, TxnVote, shard=shard
                )
                if certificate is not None and certificate[0].vote == "yes":
                    continue
                shard_legs = tuple(leg for _index, leg in self.plan[shard])
                self._submit(
                    shard,
                    "txn_vote",
                    (self.txn_id, self.coordinator, shard, shard_legs),
                    lambda _reply: self._try_decide(),
                )

        self.space._schedule(self.REVOTE_DELAY, revote)

    def _abort_protocol(self, reason: Any) -> None:
        """Order an abort decision, then release every participant."""
        self.stage = "decide"
        self.outcome_reason = reason
        self._submit(
            self.coordinator,
            "txn_decision",
            (self.txn_id, "abort", reason, ()),
            self._on_decided,
        )

    def _on_decided(self, reply: OperationFuture) -> None:
        if self.future.done or self.stage != "decide":
            return
        payload = self._payload(reply)
        if payload is None:
            return
        value = payload[1]
        if not isinstance(value, tuple) or len(value) != 4 or value[0] != "decided":
            self._fail(ReplicationError(f"transaction decision refused: {payload!r}"))
            return
        # The *ordered* outcome is authoritative: first decision wins, so a
        # lock-expiry force-abort that raced us overrides our commit intent.
        _tag, outcome, reason, _participants = value
        flight = self.client.obs.flight
        if flight.enabled:
            flight.record(
                "txn-decision",
                self.client.client_id,
                self.space._now(),
                txn=repr(self.txn_id),
                outcome=outcome,
                participants=list(self.participants),
            )
        self.decided_outcome = outcome
        if outcome == "abort":
            self.outcome_reason = reason
        self.stage = "apply"
        self._fan_apply()

    # ------------------------------------------------------------------
    # Decision pushes (a stranger resolved us)
    # ------------------------------------------------------------------

    def _on_push(self, _sender: Hashable, payload: Any) -> None:
        if self.future.done:
            return
        if isinstance(payload, TxnVote) and self.stage == "evidence":
            self._try_decide()
            return
        if isinstance(payload, TxnDecision) and self.stage in ("vote", "evidence"):
            certificate = self.client.txn_push_vote(self.txn_id, TxnDecision)
            if certificate is None:
                return
            push, _replicas = certificate
            self.forced = (push.outcome, push.reason)
            if len(self.votes) == len(self.participants):
                self._apply_forced()

    def _apply_forced(self) -> None:
        """Apply an f+1-certified pushed decision against OUR participant
        set (never the one a push claims)."""
        outcome, reason = self.forced
        self.decided_outcome = outcome
        if outcome == "abort":
            self.outcome_reason = reason
        self.stage = "apply"
        self._fan_apply()

    # ------------------------------------------------------------------
    # Apply → finish
    # ------------------------------------------------------------------

    def _fan_apply(self) -> None:
        self.applied = {}
        for shard in self.participants:
            self._submit(
                shard,
                "txn_apply",
                (self.txn_id, self.decided_outcome),
                lambda reply, shard=shard: self._on_applied(shard, reply),
            )

    def _on_applied(self, shard: int, reply: OperationFuture) -> None:
        if self.future.done or self.stage != "apply":
            return
        payload = self._payload(reply)
        if payload is None:
            return
        self.applied[shard] = payload
        if len(self.applied) == len(self.participants):
            self._finish()

    def _finish(self) -> None:
        if self.decided_outcome == "commit":
            results: list[Any] = [None] * len(self.legs)
            for shard in self.participants:
                status, value = self.applied[shard]
                if (
                    status == "OK"
                    and isinstance(value, tuple)
                    and len(value) == 3
                    and value[0] == "applied"
                ):
                    # A repeat apply (a resolver got there first) reports
                    # empty results; the affected legs stay None — the
                    # commit itself is unaffected.
                    for (index, _leg), result in zip(self.plan[shard], value[2]):
                        results[index] = result
            self._complete(("OK", ("committed", tuple(results))))
            return
        reason = self.outcome_reason
        conflict = locked_conflict(reason)
        if conflict is not None and self.attempts < self.MAX_ATTEMPTS:
            # Refused by a live or expired lock: resolve the blocker (the
            # sharded backend force-aborts expired holders at their
            # coordinator), then retry as a *fresh* transaction.
            self.client.unwatch_txn(self.txn_id)
            self.space._resolve_lock(conflict, self.process, self._begin)
            return
        self._complete_aborted(reason)

    def __repr__(self) -> str:
        return (
            f"CrossShardTxn(txn_id={self.txn_id!r}, stage={self.stage!r}, "
            f"participants={self.participants!r})"
        )
