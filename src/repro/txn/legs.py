"""The transaction leg model shared by every backend.

A *leg* is one staged tuple-space operation inside a transaction, kept as
plain wire-safe data so the same representation travels through the
client API (:meth:`~repro.api.space.Space.transact`), the single-group
``txn_exec`` fast path, and the cross-shard prepare/vote/decide protocol:

* ``("out", entry)`` — insert ``entry`` at commit;
* ``("rd", template)`` — the transaction *requires* a match and reads it
  (no match at vote time aborts the transaction — unlike a probe ``rdp``,
  a transactional read is a precondition);
* ``("in", template)`` — require a match and consume it at commit;
* ``("cas", template, entry)`` — pin the existing match (or its absence)
  and insert ``entry`` at commit iff none existed, with the usual
  ``(inserted, existing)`` result;
* ``("nix", template)`` — the transaction *requires* the absence of a
  match (a match at vote time aborts, carrying the matched entry in the
  abort reason) and locks the template's name so none can appear before
  the decision.  This is the building block that turns a wildcard-name
  ``cas`` into a cross-shard transaction: pin absence on every other
  shard, ``cas`` on the entry's own shard.

Policy is enforced **per leg**: each leg is authorized as the equivalent
non-transactional invocation (``rd``/``in`` map onto their probe forms
``rdp``/``inp``, exactly like the blocking reads and the notification
channel do), so a policy that denies a client's direct ``inp`` also
vetoes that client's transactional ``in`` — the PEO can veto any leg.

The resolve/apply split mirrors the commit protocol: :func:`resolve_legs`
authorizes every leg and *pins* the entries it matched (the vote), and
:func:`apply_legs` replays the pinned decisions against the space (the
commit).  Between the two, the caller guarantees stability — trivially on
the single-ordered-request fast path, via the lock table on the
cross-shard path.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import TupleSpaceError
from repro.policy.invocation import Invocation
from repro.tuples import Entry, Template, is_defined

__all__ = [
    "LEG_OPERATIONS",
    "Pin",
    "normalize_leg",
    "normalize_legs",
    "leg_invocation",
    "leg_name",
    "leg_names",
    "resolve_legs",
    "apply_legs",
    "exact_template",
]

#: The operations a transaction may stage.
LEG_OPERATIONS = ("out", "rd", "in", "cas", "nix")

#: Marker distinguishing "pinned the absence of a match" (cas) from
#: "nothing to pin" (out) in a pin vector — wire-safe by construction.
NO_MATCH = "__txn-no-match__"


class Pin:
    """Namespace for pin-vector helpers (pins are plain data on the wire)."""

    NO_MATCH = NO_MATCH


def normalize_leg(leg: Any) -> tuple:
    """Validate one staged leg and return its canonical tuple form."""
    if not isinstance(leg, tuple) or not leg or leg[0] not in LEG_OPERATIONS:
        raise TupleSpaceError(
            f"malformed transaction leg {leg!r}; expected one of "
            f"{LEG_OPERATIONS} with its arguments"
        )
    operation = leg[0]
    if operation == "out":
        if len(leg) != 2 or not isinstance(leg[1], Entry):
            raise TupleSpaceError(f"transaction out leg needs one Entry, got {leg!r}")
    elif operation in ("rd", "in", "nix"):
        if len(leg) != 2 or not isinstance(leg[1], Template):
            raise TupleSpaceError(
                f"transaction {operation} leg needs one Template, got {leg!r}"
            )
    else:  # cas
        if len(leg) != 3 or not isinstance(leg[1], Template) or not isinstance(leg[2], Entry):
            raise TupleSpaceError(
                f"transaction cas leg needs (template, entry), got {leg!r}"
            )
    return tuple(leg)


def normalize_legs(legs: Sequence[Any]) -> tuple:
    """Validate a staged leg sequence (a transaction must stage something)."""
    if not legs:
        raise TupleSpaceError("a transaction must stage at least one leg")
    return tuple(normalize_leg(leg) for leg in legs)


def leg_invocation(process: Any, leg: tuple) -> Invocation:
    """The non-transactional invocation a leg is policy-checked as."""
    operation = leg[0]
    if operation == "out":
        return Invocation(process=process, operation="out", arguments=(leg[1],))
    if operation in ("rd", "nix"):
        return Invocation(process=process, operation="rdp", arguments=(leg[1],))
    if operation == "in":
        return Invocation(process=process, operation="inp", arguments=(leg[1],))
    return Invocation(process=process, operation="cas", arguments=(leg[1], leg[2]))


def leg_name(field: Any) -> Optional[str]:
    """The concrete name a leg field addresses, or ``None`` for wildcard."""
    return field if is_defined(field) else None


def leg_names(leg: tuple) -> tuple:
    """The name fields a leg touches (``None`` marks a wildcard name).

    A ``cas`` leg touches both its template's and its entry's name — they
    are usually equal, but the lock table must cover both when not.
    """
    operation = leg[0]
    if operation == "out":
        return (leg_name(leg[1].fields[0]),)
    if operation in ("rd", "in", "nix"):
        return (leg_name(leg[1].fields[0]),)
    names = (leg_name(leg[1].fields[0]), leg_name(leg[2].fields[0]))
    return names if names[0] != names[1] else names[:1]


def exact_template(entry: Entry) -> Template:
    """A fully-defined template matching exactly ``entry``'s field values."""
    return Template(tuple(entry.fields))


def resolve_legs(monitor: Any, space: Any, process: Any, legs: Sequence[tuple]):
    """Authorize and pin every leg against ``space`` (the *vote*).

    Returns ``(ok, reason, pins)``.  ``reason`` is a wire-safe tuple
    naming the first refusing leg: ``("policy-denied", index, detail)``
    or ``("no-match", index)`` or ``("match", index, entry)``.  ``pins``
    is one slot per leg: the matched :class:`Entry` for ``rd``/``in``,
    the existing entry or :data:`NO_MATCH` for ``cas``, ``None`` for
    ``out``/``nix``.
    """
    pins: list[Any] = []
    for index, leg in enumerate(legs):
        decision = monitor.authorize(leg_invocation(process, leg), space)
        if not decision.allowed:
            return False, ("policy-denied", index, decision.reason), ()
        operation = leg[0]
        if operation == "out":
            pins.append(None)
        elif operation in ("rd", "in"):
            matched = space.rdp(leg[1])
            if matched is None:
                return False, ("no-match", index), ()
            pins.append(matched)
        elif operation == "nix":
            matched = space.rdp(leg[1])
            if matched is not None:
                # The matched entry rides in the reason: the owner was
                # authorized to rdp this template (checked above), and a
                # wildcard-cas driver needs the conflicting entry for its
                # ``(False, existing)`` answer.
                return False, ("match", index, matched), ()
            pins.append(None)
        else:  # cas
            existing = space.rdp(leg[1])
            pins.append(NO_MATCH if existing is None else existing)
    return True, None, tuple(pins)


def apply_legs(space: Any, legs: Sequence[tuple], pins: Sequence[Any]):
    """Replay the pinned decisions against ``space`` (the *commit*).

    Returns ``(results, inserted)`` — per-leg results in the order
    staged, plus the entries inserted (for notification fan-out).  The
    caller guarantees the pins still hold (single ordered request, or
    locks held since the vote).
    """
    results: list[Any] = []
    inserted: list[Entry] = []
    for leg, pin in zip(legs, pins):
        operation = leg[0]
        if operation == "out":
            space.out(leg[1])
            inserted.append(leg[1])
            results.append(leg[1])
        elif operation == "rd":
            results.append(pin)
        elif operation == "nix":
            results.append(None)
        elif operation == "in":
            removed = space.inp(exact_template(pin))
            results.append(removed if removed is not None else pin)
        else:  # cas
            if pin == NO_MATCH:
                space.out(leg[2])
                inserted.append(leg[2])
                results.append((True, None))
            else:
                results.append((False, pin))
    return tuple(results), tuple(inserted)
