"""Replicated transaction state: lock table and coordinator/participant records.

Everything here is part of the replica's **deterministic state machine**:
locks are acquired and released only by ordered requests, expirations are
measured in the replica's executed-operation count (never a clock), and
every structure captures to plain picklable data so checkpoints, state
digests and state transfer cover transactions exactly like tuples.

Locks are *name* locks: a lock covers one concrete tuple name, or — for
wildcard-name legs — the whole shard (``None``).  An ordinary operation
conflicts with a lock when their names may overlap (equal, or either side
wildcard); the conservative overlap rule may refuse an operation that a
finer analysis would admit, which costs the client one retry, never
safety.

Expiry is a *liveness* device, not an abort authority: a participant
never unilaterally drops a lock (that could tear a committed transaction
in half).  Instead an expired lock is reported as such in the
``TXN-LOCKED`` payload, authorizing any client to submit ``txn_force`` at
the transaction's coordinator — which aborts **iff** the transaction is
still undecided, and otherwise hands back the recorded decision so the
resolver can finish the apply fan-out the vanished owner abandoned.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["LockTable", "CoordinatorTable", "ParticipantTable"]

#: Decided/applied transaction records retained per table before the
#: oldest are pruned (idempotency horizon for very late retransmissions).
FINISHED_RETENTION = 256


class LockTable:
    """Ordered name locks with executed-op-count expirations."""

    def __init__(self, records: tuple = ()) -> None:
        # txn_key -> (names, expires_at, coordinator_shard); insertion-
        # ordered, so correct replicas (which execute the same request
        # prefix) hold identical tables and identical capture_state bytes.
        self._locks: dict[Any, tuple] = {key: value for key, value in records}

    def __len__(self) -> int:
        return len(self._locks)

    def acquire(
        self, txn_key: Any, names: tuple, expires_at: int, coordinator_shard: int
    ) -> None:
        self._locks[txn_key] = (tuple(names), expires_at, coordinator_shard)

    def release(self, txn_key: Any) -> None:
        self._locks.pop(txn_key, None)

    def holds(self, txn_key: Any) -> bool:
        return txn_key in self._locks

    def conflicting(self, names: tuple, op_counter: int) -> Optional[tuple]:
        """The first lock overlapping ``names``, as the wire-safe
        ``(txn_key, coordinator_shard, expired)`` triple of the
        ``TXN-LOCKED`` payload.

        ``names`` are the concrete names an operation touches (``None``
        marks a wildcard name, which overlaps everything).
        """
        for txn_key, (locked_names, expires_at, coordinator_shard) in self._locks.items():
            for locked in locked_names:
                for name in names:
                    if locked is None or name is None or locked == name:
                        return (txn_key, coordinator_shard, op_counter >= expires_at)
        return None

    def capture(self) -> tuple:
        return tuple(self._locks.items())

    def __repr__(self) -> str:
        return f"LockTable(locks={len(self._locks)})"


class CoordinatorTable:
    """Per-transaction coordinator records (participants, expiry, outcome)."""

    def __init__(self, records: tuple = ()) -> None:
        # txn_key -> (participants, expires_at, outcome|None, reason)
        self._records: dict[Any, tuple] = {key: value for key, value in records}

    def __len__(self) -> int:
        return len(self._records)

    def get(self, txn_key: Any) -> Optional[tuple]:
        return self._records.get(txn_key)

    def prepare(self, txn_key: Any, participants: tuple, expires_at: int) -> tuple:
        """Record a prepared transaction (idempotent: first prepare wins)."""
        record = self._records.get(txn_key)
        if record is None:
            record = (tuple(participants), expires_at, None, None)
            self._records[txn_key] = record
            self._prune()
        return record

    def decide(self, txn_key: Any, outcome: str, reason: Any) -> Optional[tuple]:
        """Record the outcome (first ordered decision wins; returns the
        authoritative record, or ``None`` for an unknown transaction)."""
        record = self._records.get(txn_key)
        if record is None:
            return None
        participants, expires_at, recorded, recorded_reason = record
        if recorded is None:
            record = (participants, expires_at, outcome, reason)
            self._records[txn_key] = record
        return self._records[txn_key]

    def _prune(self) -> None:
        # Decided records are kept only as an idempotency horizon; undecided
        # ones are never pruned (they are what txn_force resolves).
        decided = [key for key, record in self._records.items() if record[2] is not None]
        for key in decided[: max(0, len(decided) - FINISHED_RETENTION)]:
            del self._records[key]

    def capture(self) -> tuple:
        return tuple(self._records.items())

    def __repr__(self) -> str:
        return f"CoordinatorTable(txns={len(self._records)})"


class ParticipantTable:
    """Per-transaction participant records (vote, pins, apply status)."""

    def __init__(self, records: tuple = ()) -> None:
        # txn_key -> (shard, legs, pins, vote, reason, applied_outcome|None)
        self._records: dict[Any, tuple] = {key: value for key, value in records}

    def __len__(self) -> int:
        return len(self._records)

    def get(self, txn_key: Any) -> Optional[tuple]:
        return self._records.get(txn_key)

    def vote(
        self,
        txn_key: Any,
        shard: int,
        legs: tuple,
        pins: tuple,
        vote: str,
        reason: Any,
    ) -> tuple:
        """Record this group's vote (idempotent: first vote wins)."""
        record = self._records.get(txn_key)
        if record is None:
            record = (shard, tuple(legs), tuple(pins), vote, reason, None)
            self._records[txn_key] = record
            self._prune()
        return record

    def mark_applied(self, txn_key: Any, outcome: str) -> None:
        record = self._records[txn_key]
        self._records[txn_key] = record[:5] + (outcome,)

    def _prune(self) -> None:
        applied = [key for key, record in self._records.items() if record[5] is not None]
        for key in applied[: max(0, len(applied) - FINISHED_RETENTION)]:
            del self._records[key]

    def capture(self) -> tuple:
        return tuple(self._records.items())

    def __repr__(self) -> str:
        return f"ParticipantTable(txns={len(self._records)})"
