"""repro.txn — non-blocking cross-shard atomic transactions.

The building blocks behind ``Space.transact()``:

* :mod:`repro.txn.legs` — the leg vocabulary (``out``/``rd``/``in``/
  ``cas``/``nix``) with its normalization, per-leg policy mapping and the
  resolve/apply split every execution tier shares;
* :mod:`repro.txn.state` — the replica-side bookkeeping (lock table with
  ordered expirations, coordinator decision log, participant vote log);
* :mod:`repro.txn.manager` — the client-side :class:`Txn` handle and the
  :class:`CrossShardTxn` replicated-coordinator commit driver.
"""

from repro.txn.legs import (
    LEG_OPERATIONS,
    NO_MATCH,
    Pin,
    leg_invocation,
    leg_name,
    leg_names,
    normalize_leg,
    normalize_legs,
)
from repro.txn.manager import (
    CrossShardTxn,
    Txn,
    TxnOutcome,
    leg_shards,
    locked_conflict,
    outcome_from_payload,
    plan_legs,
)

__all__ = [
    "LEG_OPERATIONS",
    "NO_MATCH",
    "Pin",
    "leg_invocation",
    "leg_name",
    "leg_names",
    "normalize_leg",
    "normalize_legs",
    "Txn",
    "TxnOutcome",
    "CrossShardTxn",
    "leg_shards",
    "plan_legs",
    "locked_conflict",
    "outcome_from_payload",
]
