"""Emulated key-value store.

The state is a *frozen* mapping represented as a frozenset of ``(key,
value)`` pairs with unique keys, so it stays hashable and immutable — the
invariant every emulated state must satisfy.
"""

from __future__ import annotations

from typing import Any

from repro.universal.object_type import ObjectInvocation, ObjectType

__all__ = ["kv_store_type"]

#: Reply returned by ``get``/``delete`` for a missing key.
MISSING = "KV-MISSING"


def _as_dict(state: frozenset) -> dict:
    return dict(state)


def _as_state(mapping: dict) -> frozenset:
    return frozenset(mapping.items())


def kv_store_type() -> ObjectType:
    """A key-value store.

    Operations:

    * ``put(key, value)`` → previous value or :data:`MISSING`;
    * ``get(key)`` → value or :data:`MISSING`;
    * ``delete(key)`` → removed value or :data:`MISSING`;
    * ``keys()`` → sorted tuple of keys;
    * ``size()`` → number of keys.
    """

    def apply(state: frozenset, invocation: ObjectInvocation) -> tuple[frozenset, Any]:
        mapping = _as_dict(state)
        if invocation.operation == "put":
            key, value = invocation.args
            previous = mapping.get(key, MISSING)
            mapping[key] = value
            return _as_state(mapping), previous
        if invocation.operation == "get":
            return state, mapping.get(invocation.args[0], MISSING)
        if invocation.operation == "delete":
            key = invocation.args[0]
            previous = mapping.pop(key, MISSING)
            return _as_state(mapping), previous
        if invocation.operation == "keys":
            return state, tuple(sorted(mapping, key=repr))
        if invocation.operation == "size":
            return state, len(mapping)
        raise ValueError(f"key-value store has no operation {invocation.operation!r}")

    return ObjectType(
        name="kv-store",
        initial_state=frozenset(),
        apply=apply,
        operations=("put", "get", "delete", "keys", "size"),
    )
