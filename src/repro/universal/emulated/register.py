"""Emulated registers: multi-writer atomic register and sticky bit."""

from __future__ import annotations

from typing import Any

from repro.universal.object_type import ObjectInvocation, ObjectType

__all__ = ["atomic_register_type", "sticky_bit_type"]


def atomic_register_type(initial: Any = None) -> ObjectType:
    """A multi-reader multi-writer atomic register.

    Operations:

    * ``read()`` → current value;
    * ``write(v)`` → ``True`` (the new state holds ``v``).
    """

    def apply(state: Any, invocation: ObjectInvocation) -> tuple[Any, Any]:
        if invocation.operation == "read":
            return state, state
        if invocation.operation == "write":
            return invocation.args[0], True
        raise ValueError(f"atomic register has no operation {invocation.operation!r}")

    return ObjectType(
        name="atomic-register",
        initial_state=initial,
        apply=apply,
        operations=("read", "write"),
    )


def sticky_bit_type() -> ObjectType:
    """A sticky bit (Plotkin [13]): write-once, then permanently stuck.

    Operations:

    * ``read()`` → ``None`` while unset, else the stuck value;
    * ``set(v)`` with ``v ∈ {0, 1}`` → ``True`` if this call stuck the bit,
      ``False`` if it was already stuck (to a possibly different value).
    """

    def apply(state: Any, invocation: ObjectInvocation) -> tuple[Any, Any]:
        if invocation.operation == "read":
            return state, state
        if invocation.operation == "set":
            value = invocation.args[0]
            if value not in (0, 1):
                raise ValueError("a sticky bit only holds 0 or 1")
            if state is None:
                return value, True
            return state, False
        raise ValueError(f"sticky bit has no operation {invocation.operation!r}")

    return ObjectType(
        name="sticky-bit",
        initial_state=None,
        apply=apply,
        operations=("read", "set"),
    )
