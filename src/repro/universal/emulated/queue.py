"""Emulated FIFO queue."""

from __future__ import annotations

from typing import Any

from repro.universal.object_type import ObjectInvocation, ObjectType

__all__ = ["fifo_queue_type"]

#: Reply returned by ``dequeue``/``peek`` on an empty queue.
EMPTY = "QUEUE-EMPTY"


def fifo_queue_type() -> ObjectType:
    """A FIFO queue whose state is an immutable tuple of items.

    Operations:

    * ``enqueue(item)`` → ``True``;
    * ``dequeue()`` → the oldest item, or :data:`EMPTY`;
    * ``peek()`` → the oldest item without removing it, or :data:`EMPTY`;
    * ``size()`` → number of queued items.
    """

    def apply(state: tuple, invocation: ObjectInvocation) -> tuple[tuple, Any]:
        if invocation.operation == "enqueue":
            return state + (invocation.args[0],), True
        if invocation.operation == "dequeue":
            if not state:
                return state, EMPTY
            return state[1:], state[0]
        if invocation.operation == "peek":
            return state, state[0] if state else EMPTY
        if invocation.operation == "size":
            return state, len(state)
        raise ValueError(f"FIFO queue has no operation {invocation.operation!r}")

    return ObjectType(
        name="fifo-queue",
        initial_state=(),
        apply=apply,
        operations=("enqueue", "dequeue", "peek", "size"),
    )
