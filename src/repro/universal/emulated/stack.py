"""Emulated LIFO stack."""

from __future__ import annotations

from typing import Any

from repro.universal.object_type import ObjectInvocation, ObjectType

__all__ = ["stack_type"]

#: Reply returned by ``pop``/``top`` on an empty stack.
EMPTY = "STACK-EMPTY"


def stack_type() -> ObjectType:
    """A LIFO stack whose state is an immutable tuple (top last).

    Operations:

    * ``push(item)`` → ``True``;
    * ``pop()`` → the most recently pushed item, or :data:`EMPTY`;
    * ``top()`` → the most recently pushed item without removal, or :data:`EMPTY`;
    * ``size()`` → number of stacked items.
    """

    def apply(state: tuple, invocation: ObjectInvocation) -> tuple[tuple, Any]:
        if invocation.operation == "push":
            return state + (invocation.args[0],), True
        if invocation.operation == "pop":
            if not state:
                return state, EMPTY
            return state[:-1], state[-1]
        if invocation.operation == "top":
            return state, state[-1] if state else EMPTY
        if invocation.operation == "size":
            return state, len(state)
        raise ValueError(f"stack has no operation {invocation.operation!r}")

    return ObjectType(
        name="stack",
        initial_state=(),
        apply=apply,
        operations=("push", "pop", "top", "size"),
    )
