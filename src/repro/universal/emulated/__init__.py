"""Ready-made object types for the universal constructions.

Each factory returns an :class:`~repro.universal.object_type.ObjectType`
whose ``apply`` function is pure and whose states are immutable values, so
any number of processes can replay the shared invocation list and converge
to the same state.

Available types:

* :func:`atomic_register_type` — read/write register;
* :func:`counter_type` — fetch&increment / read counter;
* :func:`fifo_queue_type` — enqueue/dequeue/peek FIFO queue;
* :func:`stack_type` — push/pop/top stack;
* :func:`kv_store_type` — get/put/delete/keys key-value store;
* :func:`sticky_bit_type` — a write-once sticky bit (the baseline object of
  Plotkin [13] / Malkhi et al. [11]), included to emphasise that the PEATS
  emulates the very object earlier work built consensus from.
"""

from repro.universal.emulated.counter import counter_type
from repro.universal.emulated.kvstore import kv_store_type
from repro.universal.emulated.queue import fifo_queue_type
from repro.universal.emulated.register import atomic_register_type, sticky_bit_type
from repro.universal.emulated.stack import stack_type

__all__ = [
    "atomic_register_type",
    "sticky_bit_type",
    "counter_type",
    "fifo_queue_type",
    "stack_type",
    "kv_store_type",
]
