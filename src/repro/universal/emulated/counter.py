"""Emulated fetch-and-increment counter."""

from __future__ import annotations

from repro.universal.object_type import ObjectInvocation, ObjectType

__all__ = ["counter_type"]


def counter_type(initial: int = 0) -> ObjectType:
    """A shared counter.

    Operations:

    * ``read()`` → current value;
    * ``increment(delta=1)`` → the value *before* the increment
      (fetch&add semantics, so concurrent increments get distinct tickets);
    * ``reset()`` → previous value, state returns to the initial value.
    """

    def apply(state: int, invocation: ObjectInvocation) -> tuple[int, int]:
        if invocation.operation == "read":
            return state, state
        if invocation.operation == "increment":
            delta = invocation.args[0] if invocation.args else 1
            if not isinstance(delta, int):
                raise ValueError("increment delta must be an integer")
            return state + delta, state
        if invocation.operation == "reset":
            return initial, state
        raise ValueError(f"counter has no operation {invocation.operation!r}")

    return ObjectType(
        name="counter",
        initial_state=initial,
        apply=apply,
        operations=("read", "increment", "reset"),
    )
