"""Universal constructions over a PEATS (Section 6 of the paper).

A *universal construction* emulates an arbitrary deterministic shared
object — given as an :class:`ObjectType` ``⟨STATE, S0, INVOKE, REPLY,
apply⟩`` — on top of the PEATS, by agreeing on a totally ordered list of
invocations (``SEQ`` tuples) that every process replays locally.

``LockFreeUniversalConstruction``
    Algorithm 3 — uniform and lock-free: the winner of each ``cas`` threads
    its invocation; losers adopt the threaded one and retry at the next
    position.

``WaitFreeUniversalConstruction``
    Algorithm 4 — wait-free thanks to a helping mechanism: invocations are
    announced with ``ANN`` tuples and position ``pos`` is reserved for the
    announced invocation of the *preferred* process ``pos mod n`` (enforced
    by the Fig. 8 access policy), so a correct process's operation is
    eventually threaded even against ``n - 1`` faulty processes.

The :mod:`repro.universal.emulated` package provides ready-made object
types (register, counter, queue, stack, key-value store) used by the
examples, tests and benchmarks.
"""

from repro.universal.lockfree import LockFreeHandle, LockFreeUniversalConstruction
from repro.universal.object_type import ObjectInvocation, ObjectType
from repro.universal.waitfree import WaitFreeHandle, WaitFreeUniversalConstruction

__all__ = [
    "ObjectType",
    "ObjectInvocation",
    "LockFreeUniversalConstruction",
    "LockFreeHandle",
    "WaitFreeUniversalConstruction",
    "WaitFreeHandle",
]
