"""Deterministic object types ``T = ⟨STATE, S0, INVOKE, REPLY, apply⟩``.

The universal constructions emulate any object whose sequential behaviour
is captured by a deterministic transition function

    apply(state, invocation) -> (new_state, reply)

States must be treated as immutable values: ``apply`` returns a *new* state
and never mutates its argument, so that every process replaying the same
invocation list reaches the same state.  Invocation objects must be
hashable (they are stored inside tuples in the PEATS) and unique per call
(Algorithm 4 assumes no two identical invocations; we guarantee it with an
invoker + sequence-number pair).
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
from typing import Any, Callable, Hashable

__all__ = ["ObjectInvocation", "ObjectType", "InvocationFactory"]


@dataclasses.dataclass(frozen=True)
class ObjectInvocation:
    """An invocation on an emulated object.

    Attributes
    ----------
    operation:
        Operation name understood by the object type's ``apply`` function.
    args:
        Positional arguments (must be hashable).
    invoker:
        Identifier of the invoking process.
    sequence:
        Per-invoker sequence number; together with ``invoker`` it makes the
        invocation unique (the "unique timestamp" of Algorithm 4).
    """

    operation: str
    args: tuple = ()
    invoker: Hashable = None
    sequence: int = 0

    def __str__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.operation}({rendered})@{self.invoker!r}#{self.sequence}"


class InvocationFactory:
    """Creates unique :class:`ObjectInvocation` objects for one process."""

    def __init__(self, invoker: Hashable) -> None:
        self._invoker = invoker
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def __call__(self, operation: str, *args: Any) -> ObjectInvocation:
        with self._lock:
            sequence = next(self._counter)
        return ObjectInvocation(
            operation=operation, args=tuple(args), invoker=self._invoker, sequence=sequence
        )


@dataclasses.dataclass(frozen=True)
class ObjectType:
    """A deterministic sequential object specification.

    Attributes
    ----------
    name:
        Human-readable type name (``"counter"``, ``"fifo-queue"``, ...).
    initial_state:
        The initial state ``S_T``.
    apply:
        The transition function ``apply_T``; must be pure and deterministic.
    operations:
        Optional tuple of the operation names the type understands, used
        for validation and documentation.
    """

    name: str
    initial_state: Any
    apply: Callable[[Any, ObjectInvocation], tuple[Any, Any]]
    operations: tuple[str, ...] = ()

    def validate_invocation(self, invocation: ObjectInvocation) -> None:
        """Raise ``ValueError`` for operations the type does not declare."""
        if self.operations and invocation.operation not in self.operations:
            raise ValueError(
                f"object type {self.name!r} has no operation {invocation.operation!r} "
                f"(known: {', '.join(self.operations)})"
            )

    def run_sequentially(self, invocations: list[ObjectInvocation]) -> tuple[Any, list[Any]]:
        """Apply a list of invocations from the initial state.

        Returns the final state and the list of replies — the sequential
        specification the linearizability tests compare against.
        """
        state = self.initial_state
        replies: list[Any] = []
        for invocation in invocations:
            self.validate_invocation(invocation)
            state, reply = self.apply(state, invocation)
            replies.append(reply)
        return state, replies
