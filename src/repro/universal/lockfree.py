"""Algorithm 3 — uniform lock-free universal construction.

Every operation on the emulated object is *threaded*: represented as a
``⟨SEQ, pos, inv⟩`` tuple appended to a contiguous list in the PEATS with a
``cas``.  The Fig. 7 access policy guarantees the list is really a list
(at most one tuple per position, each position follows the previous one),
which yields a total order on the operations; every process replays the
list with the deterministic ``apply`` function, so the emulation is
linearizable (Theorem 6).

The construction is **uniform** — a handle only needs the shared space and
the object type, never the identity of the other processes — and
**lock-free**: of two concurrent ``cas`` attempts for the same position at
least one succeeds, but a slow process can lose every race and starve
(wait-freedom needs Algorithm 4's helping mechanism).
"""

from __future__ import annotations

from typing import Any, Hashable, Optional

from repro.errors import UniversalConstructionError
from repro.peo.peats import PEATS
from repro.policy.library import SEQ, lock_free_universal_policy
from repro.tuples import Formal, entry, template
from repro.universal.object_type import InvocationFactory, ObjectInvocation, ObjectType

__all__ = ["LockFreeUniversalConstruction", "LockFreeHandle"]


class LockFreeUniversalConstruction:
    """Factory of per-process handles sharing one PEATS-backed invocation list."""

    def __init__(self, object_type: ObjectType, *, space: Any | None = None) -> None:
        self._object_type = object_type
        self._space = space if space is not None else PEATS(lock_free_universal_policy())

    @property
    def object_type(self) -> ObjectType:
        return self._object_type

    @property
    def space(self) -> Any:
        return self._space

    def handle(self, process: Hashable) -> "LockFreeHandle":
        """Create the handle through which ``process`` uses the emulated object."""
        return LockFreeHandle(self, process)

    def threaded_invocations(self) -> list[ObjectInvocation]:
        """Administrative view: the invocation list in threading order."""
        from repro.tuples import matches

        positions: dict[int, ObjectInvocation] = {}
        pattern = template(SEQ, Formal("pos"), Formal("inv"))
        for stored in self._space.snapshot():
            if matches(stored, pattern):
                positions[stored.fields[1]] = stored.fields[2]
        return [positions[pos] for pos in sorted(positions)]


class LockFreeHandle:
    """A single process's view of the emulated object (Algorithm 3).

    The handle keeps the local replica of the object state (``state``) and
    the position of the tail of the operation list it has replayed so far
    (``pos``); both start at their initial values (lines 2–3).
    """

    def __init__(self, construction: LockFreeUniversalConstruction, process: Hashable) -> None:
        self._construction = construction
        self._space = construction.space
        self._object_type = construction.object_type
        self._process = process
        self._state = construction.object_type.initial_state
        self._pos = 0
        self._new_invocation = InvocationFactory(process)
        self._statistics = {"invocations": 0, "cas_attempts": 0, "cas_wins": 0, "helped_replays": 0}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def process(self) -> Hashable:
        return self._process

    @property
    def state(self) -> Any:
        """The local replica of the emulated object's state."""
        return self._state

    @property
    def position(self) -> int:
        """Index of the last operation this handle has replayed."""
        return self._pos

    @property
    def statistics(self) -> dict[str, int]:
        return dict(self._statistics)

    def invoke(self, operation: str, *args: Any, max_attempts: int | None = None) -> Any:
        """Execute ``operation(*args)`` on the emulated object and return its reply.

        ``max_attempts`` bounds the number of positions tried (``None``
        means unbounded, the paper's semantics); it exists so tests can
        demonstrate that lock-freedom alone does not guarantee an individual
        bound in the presence of contention.
        """
        invocation = self._new_invocation(operation, *args)
        self._object_type.validate_invocation(invocation)
        self._statistics["invocations"] += 1
        attempts = 0
        # Lines 4–11: walk the list, replaying other processes' operations,
        # until our own invocation is threaded.
        while True:
            attempts += 1
            if max_attempts is not None and attempts > max_attempts:
                raise UniversalConstructionError(
                    f"invocation {invocation} not threaded after {max_attempts} attempts"
                )
            next_pos = self._pos + 1
            threaded = self._thread_at(next_pos, invocation)
            if threaded is None:
                # The cas was denied although no tuple occupies the position
                # (cannot happen to a rule-abiding process under the Fig. 7
                # policy, but a custom policy might); retry the same position.
                continue
            self._pos = next_pos
            self._state, reply = self._object_type.apply(self._state, threaded)
            if threaded == invocation:
                return reply
            self._statistics["helped_replays"] += 1

    def refresh(self) -> Any:
        """Replay any operations threaded by other processes (read-only catch-up)."""
        while True:
            found = self._rdp(template(SEQ, self._pos + 1, Formal("inv")))
            if found is None:
                return self._state
            self._pos += 1
            self._state, _ = self._object_type.apply(self._state, found.fields[2])

    # ------------------------------------------------------------------
    # Algorithm internals
    # ------------------------------------------------------------------

    def _thread_at(self, position: int, invocation: ObjectInvocation) -> Optional[ObjectInvocation]:
        """Try to thread ``invocation`` at ``position`` (line 6).

        Returns the invocation actually threaded at that position (ours on a
        successful ``cas``, the competitor's on a failed one), or ``None``
        when the position is still empty and the ``cas`` was denied.
        """
        self._statistics["cas_attempts"] += 1
        inserted, existing = self._cas(
            template(SEQ, position, Formal("einv")),
            entry(SEQ, position, invocation),
        )
        if inserted:
            self._statistics["cas_wins"] += 1
            return invocation
        if existing is not None:
            return existing.fields[2]
        found = self._rdp(template(SEQ, position, Formal("einv")))
        return None if found is None else found.fields[2]

    def _rdp(self, pattern):
        try:
            return self._space.rdp(pattern, process=self._process)
        except TypeError:
            return self._space.rdp(pattern)

    def _cas(self, pattern, new_entry):
        try:
            return self._space.cas(pattern, new_entry, process=self._process)
        except TypeError:
            return self._space.cas(pattern, new_entry)

    def __repr__(self) -> str:
        return (
            f"LockFreeHandle(process={self._process!r}, pos={self._pos}, "
            f"type={self._object_type.name!r})"
        )
