"""Algorithm 4 — wait-free universal construction.

Like Algorithm 3, every operation is threaded into a contiguous list of
``SEQ`` tuples that all processes replay.  Wait-freedom is obtained with a
*helping mechanism*:

* a process first announces its invocation with an ``⟨ANN, i, inv⟩`` tuple;
* the *preferred* process for list position ``pos`` is the one with index
  ``pos mod n``;
* the access policy (Fig. 8) refuses to thread anything other than the
  preferred process's announced invocation at ``pos`` while that
  announcement is outstanding, so every correct process's announced
  invocation is threaded after at most ``n`` further positions — either by
  itself or by a helper — regardless of how the other processes behave
  (Lemma 5 / Theorem 7).

Consequently the construction is **not uniform**: processes must know the
ordered process list in order to compute the preferred index and to help.

Implementation note (clarifying the paper's pseudocode): the ``cas`` of
line 16 can be *denied* by the policy when the preferred process announces
between the check of line 9 and the ``cas`` — an asynchrony race the
pseudocode leaves implicit.  In that case the handle retries the same
position (it neither advances ``pos`` nor re-applies a stale invocation),
which preserves both linearizability and wait-freedom: the retry will
observe the announcement and help.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Sequence

from repro.errors import UniversalConstructionError
from repro.peo.peats import PEATS
from repro.policy.library import ANN, SEQ, wait_free_universal_policy
from repro.tuples import ANY, Formal, entry, template
from repro.universal.object_type import InvocationFactory, ObjectInvocation, ObjectType

__all__ = ["WaitFreeUniversalConstruction", "WaitFreeHandle"]


class WaitFreeUniversalConstruction:
    """Factory of per-process handles for the wait-free construction."""

    def __init__(
        self,
        object_type: ObjectType,
        processes: Sequence[Hashable],
        *,
        space: Any | None = None,
    ) -> None:
        self._object_type = object_type
        self._processes = tuple(processes)
        if len(set(self._processes)) != len(self._processes):
            raise ValueError("process identifiers must be unique")
        if not self._processes:
            raise ValueError("the wait-free construction needs at least one process")
        self._index_of = {p: i for i, p in enumerate(self._processes)}
        if space is None:
            space = PEATS(wait_free_universal_policy(self._processes))
        self._space = space

    @property
    def object_type(self) -> ObjectType:
        return self._object_type

    @property
    def space(self) -> Any:
        return self._space

    @property
    def processes(self) -> tuple[Hashable, ...]:
        return self._processes

    def index_of(self, process: Hashable) -> int:
        return self._index_of[process]

    def handle(self, process: Hashable) -> "WaitFreeHandle":
        if process not in self._index_of:
            raise ValueError(f"unknown process {process!r}")
        return WaitFreeHandle(self, process)

    def threaded_invocations(self) -> list[ObjectInvocation]:
        """Administrative view: the invocation list in threading order."""
        from repro.tuples import matches

        positions: dict[int, ObjectInvocation] = {}
        pattern = template(SEQ, Formal("pos"), Formal("inv"))
        for stored in self._space.snapshot():
            if matches(stored, pattern):
                positions[stored.fields[1]] = stored.fields[2]
        return [positions[pos] for pos in sorted(positions)]


class WaitFreeHandle:
    """A single process's view of the emulated object (Algorithm 4)."""

    def __init__(self, construction: WaitFreeUniversalConstruction, process: Hashable) -> None:
        self._construction = construction
        self._space = construction.space
        self._object_type = construction.object_type
        self._process = process
        self._index = construction.index_of(process)
        self._n = len(construction.processes)
        self._state = construction.object_type.initial_state
        self._pos = 0
        self._new_invocation = InvocationFactory(process)
        self._statistics = {
            "invocations": 0,
            "cas_attempts": 0,
            "cas_wins": 0,
            "helps_given": 0,
            "helped_replays": 0,
            "denied_retries": 0,
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def process(self) -> Hashable:
        return self._process

    @property
    def index(self) -> int:
        return self._index

    @property
    def state(self) -> Any:
        return self._state

    @property
    def position(self) -> int:
        return self._pos

    @property
    def statistics(self) -> dict[str, int]:
        return dict(self._statistics)

    def invoke(self, operation: str, *args: Any, max_attempts: int | None = None) -> Any:
        """Execute ``operation(*args)`` on the emulated object (wait-free)."""
        invocation = self._new_invocation(operation, *args)
        self._object_type.validate_invocation(invocation)
        self._statistics["invocations"] += 1

        # Line 4: announce the invocation.
        self._out(entry(ANN, self._index, invocation))

        reply: Any = None
        attempts = 0
        # Lines 5–21: walk the list until our invocation is the one executed.
        while True:
            attempts += 1
            if max_attempts is not None and attempts > max_attempts:
                raise UniversalConstructionError(
                    f"invocation {invocation} not threaded after {max_attempts} attempts"
                )
            next_pos = self._pos + 1
            threaded = self._resolve_position(next_pos, invocation)
            if threaded is None:
                # Denied cas while the position is still empty (see module
                # docstring); retry the same position.
                self._statistics["denied_retries"] += 1
                continue
            self._pos = next_pos
            self._state, current_reply = self._object_type.apply(self._state, threaded)
            if threaded == invocation:
                reply = current_reply
                break
            self._statistics["helped_replays"] += 1

        # Line 22: withdraw the announcement.
        self._inp(template(ANN, self._index, invocation))
        return reply

    def refresh(self) -> Any:
        """Replay operations threaded by others without invoking anything."""
        while True:
            found = self._rdp(template(SEQ, self._pos + 1, Formal("inv")))
            if found is None:
                return self._state
            self._pos += 1
            self._state, _ = self._object_type.apply(self._state, found.fields[2])

    # ------------------------------------------------------------------
    # Algorithm internals
    # ------------------------------------------------------------------

    def _resolve_position(
        self, position: int, invocation: ObjectInvocation
    ) -> Optional[ObjectInvocation]:
        """Determine the invocation threaded at ``position`` (lines 8–19).

        Returns that invocation, or ``None`` if it cannot be determined yet
        (policy denial while the position is still empty).
        """
        # Line 8: is the position already occupied?
        found = self._rdp(template(SEQ, position, Formal("einv")))
        if found is not None:
            return found.fields[2]

        preferred = position % self._n
        to_thread = invocation
        helping = False
        if self._index != preferred:
            announced = self._rdp(template(ANN, preferred, Formal("tinv")))
            if announced is not None:
                announced_invocation = announced.fields[2]
                already_threaded = self._rdp(template(SEQ, ANY, announced_invocation))
                if already_threaded is None:
                    # Lines 9–12: the preferred process needs help.
                    to_thread = announced_invocation
                    helping = True

        # Lines 16–18: try to thread ``to_thread`` at ``position``.
        self._statistics["cas_attempts"] += 1
        inserted, existing = self._cas(
            template(SEQ, position, Formal("einv")),
            entry(SEQ, position, to_thread),
        )
        if inserted:
            self._statistics["cas_wins"] += 1
            if helping:
                self._statistics["helps_given"] += 1
            return to_thread
        if existing is not None:
            return existing.fields[2]
        # Denied: check once more whether someone filled the position in the
        # meantime; otherwise report "unknown" so the caller retries.
        found = self._rdp(template(SEQ, position, Formal("einv")))
        return None if found is None else found.fields[2]

    # ------------------------------------------------------------------
    # Space helpers
    # ------------------------------------------------------------------

    def _out(self, new_entry):
        try:
            return self._space.out(new_entry, process=self._process)
        except TypeError:
            return self._space.out(new_entry)

    def _rdp(self, pattern):
        try:
            return self._space.rdp(pattern, process=self._process)
        except TypeError:
            return self._space.rdp(pattern)

    def _inp(self, pattern):
        try:
            return self._space.inp(pattern, process=self._process)
        except TypeError:
            return self._space.inp(pattern)

    def _cas(self, pattern, new_entry):
        try:
            return self._space.cas(pattern, new_entry, process=self._process)
        except TypeError:
            return self._space.cas(pattern, new_entry)

    def __repr__(self) -> str:
        return (
            f"WaitFreeHandle(process={self._process!r}, index={self._index}, "
            f"pos={self._pos}, type={self._object_type.name!r})"
        )
