"""TCP transport: length-prefixed frames over ``asyncio.start_server``.

:class:`TcpTransport` is the multi-process rung of the deployment
ladder.  Every registered node gets its own frame server (one listening
socket per node, started on the node's pinned reactor), senders keep one
lazily-opened connection per (reactor, receiver) pair, and payloads
travel as the :mod:`repro.net.codec` frames — serialised once at the
sender, MAC'd over the exact bytes, verified and decoded on the
receiving node's own reactor.

Within one process the transport discovers its own listening ports and
is zero-configuration (the conformance suite runs whole replica groups
over localhost sockets this way).  Across processes, pass ``addresses``
— a ``{node: (host, port)}`` map for the remote peers — and pick fixed
ports per node via ``port_of``; :meth:`TcpTransport.address_of` tells
you what to put in the other processes' maps.
"""

from __future__ import annotations

import asyncio
import collections
import struct
from typing import Any, Callable, Hashable, Mapping, Optional

from repro.errors import SimulationError
from repro.net import codec
from repro.net.transport import Reactor, RealTransport
from repro.replication.crypto import KeyStore

__all__ = ["TcpTransport"]

_HEADER_SIZE = struct.calcsize(codec.FRAME_HEADER)


class _Outbound:
    """One sender-side connection: a frame backlog drained by a pump task."""

    __slots__ = ("frames", "event", "task")

    def __init__(self) -> None:
        self.frames: collections.deque[bytes] = collections.deque()
        self.event = asyncio.Event()
        self.task: Optional[asyncio.Task] = None


class TcpTransport(RealTransport):
    """Authenticated length-prefixed frames over localhost/remote TCP."""

    def __init__(
        self,
        *,
        reactors: int = 1,
        host: str = "127.0.0.1",
        keystore: KeyStore | None = None,
        addresses: Mapping[Hashable, tuple[str, int]] | None = None,
        port_of: Callable[[Hashable], int] | None = None,
        default_wait_timeout: float = 30_000.0,
        connect_retries: int = 5,
        obs: Any = None,
    ) -> None:
        """``addresses`` seeds endpoints for *remote* nodes (other
        processes); ``port_of`` assigns fixed listening ports to local
        nodes (default: ephemeral, self-discovered)."""
        super().__init__(
            reactors=reactors,
            keystore=keystore,
            default_wait_timeout=default_wait_timeout,
            name="tcp",
            obs=obs,
        )
        self._host = host
        self._addresses: dict[Hashable, tuple[str, int]] = dict(addresses or {})
        self._port_of = port_of
        self._connect_retries = connect_retries
        self._servers: dict[Hashable, asyncio.base_events.Server] = {}
        self._outbound: dict[tuple[int, Hashable], _Outbound] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def has_node(self, node: Hashable) -> bool:
        """Local nodes *and* configured remote peers are reachable."""
        return node in self._handlers or node in self._addresses

    def address_of(self, node: Hashable) -> tuple[str, int]:
        """The ``(host, port)`` other processes should use for ``node``."""
        address = self._addresses.get(node)
        if address is None:
            raise SimulationError(f"no address known for node {node!r}")
        return address

    # ------------------------------------------------------------------
    # Node lifecycle: one frame server per node
    # ------------------------------------------------------------------

    def _attach(self, node: Hashable) -> None:
        reactor = self.reactor_of(node)
        port = 0 if self._port_of is None else self._port_of(node)

        async def start() -> asyncio.base_events.Server:
            def on_connection(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
                return self._serve_connection(node, reader, writer)

            return await asyncio.start_server(on_connection, host=self._host, port=port)

        server = reactor.run_coroutine(start())
        self._servers[node] = server
        bound_port = server.sockets[0].getsockname()[1]
        self._addresses[node] = (self._host, bound_port)

    def _detach(self, node: Hashable) -> None:
        server = self._servers.pop(node, None)
        if server is None:
            return

        async def shutdown() -> None:
            server.close()
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover - teardown best effort
                pass

        try:
            self.reactor_of(node).run_coroutine(shutdown(), timeout=2.0)
        except Exception:  # pragma: no cover - teardown best effort
            pass

    async def _serve_connection(
        self, node: Hashable, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Read frames for ``node`` until the peer hangs up.

        Runs on ``node``'s reactor, so the handler call needs no further
        marshalling — the node's messages are serialised on its own loop
        exactly as with the loopback and simulated transports.
        """
        try:
            while True:
                header = await reader.readexactly(_HEADER_SIZE)
                (length,) = struct.unpack(codec.FRAME_HEADER, header)
                if length > codec.MAX_FRAME_BYTES:
                    self._count("rejected")
                    break
                body = await reader.readexactly(length)
                self._deliver_frame(node, body)
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            pass
        except asyncio.CancelledError:
            # Shutdown drain: end the task *normally* — asyncio.streams'
            # connection callback calls task.exception(), which would
            # re-raise on a task left in the cancelled state.
            pass
        finally:
            writer.close()

    def _deliver_frame(self, node: Hashable, body: bytes) -> None:
        with self._lock:
            self._bytes_received += len(body) + _HEADER_SIZE
            self._obs_bytes_received.inc(float(len(body) + _HEADER_SIZE))
        try:
            sender, receiver, payload_bytes, mac = codec.decode_frame(body)
        except codec.CodecError:
            self._count("rejected")
            return
        if receiver != node:
            # A frame addressed elsewhere landed on this node's socket —
            # misrouted or forged; never hand it to the handler.
            self._count("dropped")
            return
        if not self._authenticator.verify(sender, receiver, payload_bytes, mac):
            self._count("rejected")
            return
        try:
            payload = codec.decode_payload(payload_bytes)
        except codec.CodecError:
            self._count("rejected")
            return
        handler = self._handlers.get(node)
        if handler is None:  # pragma: no cover - register precedes serving
            self._count("dropped")
            return
        self._count("delivered")
        self._guarded(lambda: handler(sender, payload))()

    def _count(self, counter: str) -> None:
        with self._lock:
            if counter == "delivered":
                self._delivered += 1
                self._obs_frames_delivered.inc()
            elif counter == "dropped":
                self._dropped += 1
                self._obs_frames_dropped.inc()
            else:
                self._rejected += 1
                self._obs_mac_rejects.inc()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, sender: Hashable, receiver: Hashable, payload: Any) -> None:
        """Serialise once, MAC the bytes, enqueue on the sender's reactor."""
        if self._closed:
            return
        if not self.has_node(receiver):
            raise SimulationError(f"unknown receiver {receiver!r}")
        payload_bytes = codec.encode_payload(payload)
        mac = self._authenticator.mac(sender, receiver, payload_bytes)
        frame = codec.encode_frame(sender, receiver, payload_bytes, mac)
        with self._lock:
            self._frames_sent += 1
            self._bytes_sent += len(frame)
            self._obs_frames_sent.inc()
            self._obs_bytes_sent.inc(float(len(frame)))
        reactor = self.reactor_of(sender if sender in self._handlers else receiver)
        reactor.call_soon(lambda: self._enqueue(reactor, receiver, frame))

    def _dispatch(self, sender: Hashable, receiver: Hashable, payload: Any, mac: str) -> None:
        raise AssertionError("TcpTransport.send never delegates to _dispatch")  # pragma: no cover

    def _enqueue(self, reactor: Reactor, receiver: Hashable, frame: bytes) -> None:
        """Append to the (reactor, receiver) backlog; runs on the reactor."""
        key = (id(reactor), receiver)
        out = self._outbound.get(key)
        if out is None:
            out = _Outbound()
            self._outbound[key] = out
            out.task = reactor.loop.create_task(self._pump(out, receiver))
        out.frames.append(frame)
        out.event.set()

    #: Write attempts (each over a fresh connection) per head-of-line
    #: frame before the whole backlog is conceded as dropped.
    WRITE_ATTEMPTS = 3

    async def _pump(self, out: _Outbound, receiver: Hashable) -> None:
        """Drain one backlog over one (re)connecting stream."""
        writer: Optional[asyncio.StreamWriter] = None
        attempts = 0
        try:
            while True:
                await out.event.wait()
                out.event.clear()
                while out.frames:
                    frame = out.frames[0]
                    if writer is None:
                        writer = await self._connect(receiver)
                        if writer is None:
                            with self._lock:
                                self._dropped += len(out.frames)
                            out.frames.clear()
                            attempts = 0
                            break
                    try:
                        writer.write(frame)
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        # The peer dropped the stream: reconnect and retry
                        # this frame a bounded number of times (a peer that
                        # accepts connections but resets every write must
                        # not spin the reactor forever), then concede and
                        # drop the backlog like an unreachable peer.
                        writer = None
                        attempts += 1
                        if attempts >= self.WRITE_ATTEMPTS:
                            with self._lock:
                                self._dropped += len(out.frames)
                            out.frames.clear()
                            attempts = 0
                            break
                        continue
                    out.frames.popleft()
                    attempts = 0
        finally:
            if writer is not None:
                writer.close()

    async def _connect(self, receiver: Hashable) -> Optional[asyncio.StreamWriter]:
        address = self._addresses.get(receiver)
        if address is None:
            return None
        for attempt in range(self._connect_retries):
            try:
                _, writer = await asyncio.open_connection(*address)
                return writer
            except OSError:
                await asyncio.sleep(0.02 * (attempt + 1))
        return None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        # The base close detaches every node's server; the pump and
        # server-connection tasks are then cancelled (and their writers
        # closed) by each reactor's drain before its loop stops.
        self._outbound.clear()
        super().close()

    def __repr__(self) -> str:
        return (
            f"TcpTransport(host={self._host!r}, reactors={len(self._reactors)}, "
            f"nodes={len(self._handlers)}, delivered={self._delivered})"
        )
