"""In-process asyncio transport: real concurrency, in-memory delivery.

:class:`AsyncioLoopbackTransport` is the first rung of the deployment
ladder after the simulation: the same nodes, handlers, MAC-authenticated
envelopes and timer semantics as
:class:`~repro.replication.network.SimulatedNetwork`, but driven by real
asyncio event loops on real threads with wall-clock time.  Payloads stay
in memory (no serialisation), which makes this transport the calibration
instrument for the simulation's per-message ``processing_time`` model:
the loopback measures what one reactor can actually sustain, and
``benchmarks/bench_net_calibration.py`` fits the sim's knob to it.

Deliveries hop onto the *receiver's* reactor, so a node's handler runs
serially on its pinned loop exactly like in the simulation; with
``reactors > 1`` a sharded cluster pins each replica group to its own
loop and the groups genuinely run in parallel.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.net.transport import RealTransport
from repro.replication.crypto import KeyStore

__all__ = ["AsyncioLoopbackTransport"]


class AsyncioLoopbackTransport(RealTransport):
    """Asyncio tasks + queues transport delivering payloads in memory."""

    def __init__(
        self,
        *,
        reactors: int = 1,
        keystore: KeyStore | None = None,
        default_wait_timeout: float = 30_000.0,
        obs: Any = None,
    ) -> None:
        super().__init__(
            reactors=reactors,
            keystore=keystore,
            default_wait_timeout=default_wait_timeout,
            name="loopback",
            obs=obs,
        )

    def _dispatch(self, sender: Hashable, receiver: Hashable, payload: Any, mac: str) -> None:
        # The payload crosses threads by reference; the MAC is verified on
        # the receiving reactor so the authentication cost lands on the
        # receiver, mirroring the simulation's processing model.
        self.reactor_of(receiver).call_soon(
            lambda: self._handle_delivery(sender, receiver, payload, mac)
        )
