"""Wire codec for the TCP transport: tagged trees in msgpack/JSON frames.

The protocol messages are immutable dataclasses over plain Python data
(tuples, dicts, strings, numbers) plus the tuple-space value types
(:class:`~repro.tuples.Entry`, :class:`~repro.tuples.Template`,
``ANY``, :class:`~repro.tuples.Formal`).  The codec maps that object
graph to a JSON-safe *tagged tree* and back, preserving exactly the
properties the protocol depends on:

* **container types survive** — tuples decode as tuples, lists as lists,
  dict insertion order is preserved (digests and MACs are pickle-based,
  so a ``tuple`` silently becoming a ``list`` would break every vote);
* **only registered message classes decode** — an attacker who controls
  the wire cannot make the codec instantiate arbitrary classes (this is
  why the frames are *not* pickle);
* **round-tripping is value-stable**: ``decode(encode(x)) == x`` and the
  pickle-based :func:`~repro.replication.crypto.digest` of the decoded
  graph equals the original's, which keeps client MAC vectors and batch
  digests verifiable across the wire.

Frames are length-prefixed: a 4-byte big-endian body length, then the
body — an envelope carrying sender, receiver, the **serialised payload
bytes** and the MAC.  Payloads are serialised once by the sender (format
byte ``M`` for msgpack when the optional dependency is installed, ``J``
for the always-available JSON fallback) and the envelope MAC is computed
over those exact bytes, so transport authentication never depends on the
receiver re-serialising an object graph.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import struct
from typing import Any, Hashable

from repro.errors import ReplicationError
from repro.replication import messages as _messages
from repro.tuples.fields import ANY, Formal, Wildcard
from repro.tuples.tuple import Entry, Template

try:  # Optional accelerator; the wheel's [net] extra pulls it in.
    import msgpack  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised on the JSON fallback path
    msgpack = None  # type: ignore[assignment]

__all__ = [
    "CodecError",
    "encode",
    "decode",
    "encode_payload",
    "decode_payload",
    "encode_frame",
    "decode_frame",
    "FRAME_HEADER",
    "MAX_FRAME_BYTES",
    "MESSAGE_CLASSES",
]


class CodecError(ReplicationError):
    """A payload could not be encoded, or a frame could not be decoded."""


#: The dataclasses allowed on the wire (name → class).  Everything the
#: replication stack sends is built from these plus plain data and the
#: tuple-space value types.
MESSAGE_CLASSES: dict[str, type[Any]] = {
    cls.__name__: cls
    for cls in (
        _messages.ClientRequest,
        _messages.ClientReply,
        _messages.Batch,
        _messages.PrePrepare,
        _messages.Prepare,
        _messages.Commit,
        _messages.Checkpoint,
        _messages.StateRequest,
        _messages.StateResponse,
        _messages.ViewChange,
        _messages.NewView,
        _messages.RegisterWaiter,
        _messages.CancelWaiter,
        _messages.Notify,
        _messages.TxnPrepare,
        _messages.TxnVote,
        _messages.TxnDecision,
        _messages.TxnAck,
    )
}

#: Types a :class:`~repro.tuples.Formal` field may carry over the wire.
_FORMAL_TYPES: dict[str, type[Any]] = {
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
    "bytes": bytes,
    "tuple": tuple,
    "list": list,
    "NoneType": type(None),
}
_FORMAL_TYPE_NAMES = {cls: name for name, cls in _FORMAL_TYPES.items()}

_SCALARS = (str, int, float, bool, type(None))

#: ``struct`` format of the frame length prefix (4-byte big-endian).
FRAME_HEADER = ">I"
_HEADER_SIZE = struct.calcsize(FRAME_HEADER)
#: Hard ceiling on one frame body; a peer announcing more is cut off
#: before the transport allocates anything.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Hard ceiling on wire-tree nesting.  Real protocol payloads nest a
#: handful of levels (NewView → reproposals → batch → request →
#: template → formal); an unauthenticated peer must not be able to
#: crash the decoder with a pathologically deep tree, so decoding
#: rejects — with :class:`CodecError`, counted as one more rejected
#: frame — long before Python's recursion limit.
MAX_DEPTH = 64


def encode(value: Any) -> Any:
    """Encode ``value`` as a JSON/msgpack-safe tagged tree."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, bytes):
        return {"__b": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"__t": [encode(item) for item in value]}
    if isinstance(value, list):
        return {"__l": [encode(item) for item in value]}
    if isinstance(value, dict):
        return {"__d": [[encode(k), encode(v)] for k, v in value.items()]}
    if isinstance(value, Entry):
        return {"__e": [encode(field) for field in value.fields]}
    if isinstance(value, Template):
        return {"__tp": [encode(field) for field in value.fields]}
    if isinstance(value, Wildcard):
        return {"__any": 1}
    if isinstance(value, Formal):
        if value.type_ is not None and value.type_ not in _FORMAL_TYPE_NAMES:
            raise CodecError(
                f"formal field type {value.type_!r} is not wire-safe; "
                f"supported: {sorted(_FORMAL_TYPES)}"
            )
        type_name = None if value.type_ is None else _FORMAL_TYPE_NAMES[value.type_]
        return {"__f": [value.name, type_name]}
    if dataclasses.is_dataclass(value) and type(value).__name__ in MESSAGE_CLASSES:
        return {
            "__dc": type(value).__name__,
            "f": {
                field.name: encode(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    raise CodecError(
        f"cannot encode {type(value).__name__!r} for the wire; payloads may "
        "only contain protocol messages, tuple-space values and plain data"
    )


def decode(tree: Any, *, _depth: int = 0) -> Any:
    """Decode a tagged tree produced by :func:`encode`.

    Depth-bounded (:data:`MAX_DEPTH`): the tree arrives from the wire
    *before* MAC verification can vouch for the sender, so structural
    attacks must fail with :class:`CodecError`, never a crash.
    """
    if _depth > MAX_DEPTH:
        raise CodecError(f"wire tree nesting exceeds {MAX_DEPTH} levels")
    if isinstance(tree, _SCALARS):
        return tree
    if not isinstance(tree, dict):
        raise CodecError(f"malformed wire tree node: {tree!r}")
    depth = _depth + 1
    if len(tree) == 1:
        ((tag, body),) = tree.items()
        if tag == "__t":
            return tuple(decode(item, _depth=depth) for item in body)
        if tag == "__l":
            return [decode(item, _depth=depth) for item in body]
        if tag == "__d":
            return {decode(k, _depth=depth): decode(v, _depth=depth) for k, v in body}
        if tag == "__b":
            return base64.b64decode(body)
        if tag == "__e":
            return Entry([decode(field, _depth=depth) for field in body])
        if tag == "__tp":
            return Template([decode(field, _depth=depth) for field in body])
        if tag == "__any":
            return ANY
        if tag == "__f":
            name, type_name = body
            type_ = None if type_name is None else _FORMAL_TYPES.get(type_name)
            if type_name is not None and type_ is None:
                raise CodecError(f"unknown formal field type {type_name!r}")
            return Formal(name, type_)
    if set(tree) == {"__dc", "f"}:
        cls = MESSAGE_CLASSES.get(tree["__dc"])
        if cls is None:
            raise CodecError(f"unknown message class {tree['__dc']!r} on the wire")
        fields = {name: decode(value, _depth=depth) for name, value in tree["f"].items()}
        try:
            return cls(**fields)
        except TypeError as error:
            raise CodecError(f"malformed {tree['__dc']} on the wire: {error}") from None
    raise CodecError(f"unknown wire tag in {sorted(tree)!r}")


def _pack(tree: Any) -> bytes:
    if msgpack is not None:
        packed: bytes = msgpack.packb(tree, use_bin_type=True)
        return b"M" + packed
    return b"J" + json.dumps(tree, separators=(",", ":")).encode("utf-8")


def _unpack(data: bytes) -> Any:
    """Either format byte is accepted regardless of what this side would
    emit, so a msgpack-less process can talk to one with the accelerator.

    Every parser failure — malformed syntax, bad UTF-8, nesting deep
    enough to hit the interpreter's recursion limit — surfaces as
    :class:`CodecError`: these bytes are pre-authentication input, so
    the transport must be able to count one rejected frame and move on.
    """
    if not data:
        raise CodecError("empty wire blob")
    fmt, raw = data[:1], data[1:]
    try:
        if fmt == b"M":
            if msgpack is None:
                raise CodecError("received a msgpack frame but msgpack is not installed")
            return msgpack.unpackb(raw, raw=False)
        if fmt == b"J":
            return json.loads(raw.decode("utf-8"))
    except CodecError:
        raise
    except (ValueError, UnicodeDecodeError, RecursionError) as error:
        raise CodecError(f"undecodable wire frame: {type(error).__name__}") from None
    except Exception as error:  # msgpack's own exception hierarchy
        raise CodecError(f"undecodable wire frame: {type(error).__name__}") from None
    raise CodecError(f"unknown frame format byte {fmt!r}")


def encode_payload(payload: Any) -> bytes:
    """Serialise one payload; the envelope MAC covers exactly these bytes."""
    return _pack(encode(payload))


def decode_payload(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode_payload`."""
    return decode(_unpack(data))


def encode_frame(
    sender: Hashable, receiver: Hashable, payload_bytes: bytes, mac: str
) -> bytes:
    """One length-prefixed wire frame carrying an authenticated payload."""
    tree = {
        "s": encode(sender),
        "r": encode(receiver),
        "p": encode(payload_bytes),
        "m": mac,
    }
    body = _pack(tree)
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return struct.pack(FRAME_HEADER, len(body)) + body


def decode_frame(body: bytes) -> tuple[Hashable, Hashable, bytes, str]:
    """Decode one frame *body* (without the length prefix).

    Returns ``(sender, receiver, payload_bytes, mac)``; the caller
    verifies ``mac`` over ``payload_bytes`` **before** decoding the
    payload itself — unauthenticated bytes never reach the object layer.
    """
    tree = _unpack(body)
    if not isinstance(tree, dict) or set(tree) != {"s", "r", "p", "m"}:
        raise CodecError("malformed frame envelope")
    payload_bytes = decode(tree["p"])
    if not isinstance(payload_bytes, bytes):
        raise CodecError("frame payload must be a serialised byte blob")
    mac = tree["m"]
    if not isinstance(mac, str):
        raise CodecError("frame MAC must be a string")
    return decode(tree["s"]), decode(tree["r"]), payload_bytes, mac
