"""Fitting the simulation's message-cost model to a real transport.

The simulated network charges every delivery a per-receiver
``processing_time`` (simulated milliseconds) — the serial CPU cost of
authenticating and handling one message, the resource request batching
amortises.  A *real* transport has an actual such cost; this module
turns measurements of it into the sim's knob, so virtual-time
experiments predict real-concurrency behaviour:

* :func:`latency_summary` condenses a wall-clock latency sample into
  the percentiles the calibration benchmark reports;
* :func:`calibrate_processing_time` picks, from a swept family of
  simulated runs, the ``processing_time`` whose predicted throughput
  best matches the measured one (log-scale nearest match, since the
  sweep spans decades).

``benchmarks/bench_net_calibration.py`` uses both to emit the
machine-readable ``BENCH_net_calibration.json`` perf trajectory.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

from repro.errors import SimulationError

__all__ = ["latency_summary", "calibrate_processing_time"]


def latency_summary(latencies_ms: Sequence[float]) -> dict[str, float]:
    """p50/p99/mean/max of a latency sample (milliseconds)."""
    if not latencies_ms:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(latencies_ms)

    def percentile(q: float) -> float:
        index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[index]

    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": percentile(0.50),
        "p99": percentile(0.99),
        "max": ordered[-1],
    }


def calibrate_processing_time(
    measured_ops_per_sec: float,
    sim_sweep: Sequence[Mapping[str, Any]],
) -> dict[str, Any]:
    """The sweep point whose simulated throughput best matches reality.

    ``sim_sweep`` rows need ``processing_time`` and ``ops_per_sec`` keys
    (any extra keys ride along into the result).  Matching happens in
    log-throughput space: the sweep typically spans orders of magnitude,
    and a linear nearest-neighbour would collapse onto the fastest point.
    """
    if not sim_sweep:
        raise SimulationError("cannot calibrate against an empty sweep")
    if measured_ops_per_sec <= 0:
        raise SimulationError("measured throughput must be positive")

    def distance(row: Mapping[str, Any]) -> float:
        predicted = float(row["ops_per_sec"])
        if predicted <= 0:
            return math.inf
        return abs(math.log(predicted) - math.log(measured_ops_per_sec))

    best = min(sim_sweep, key=distance)
    predicted = float(best["ops_per_sec"])
    return {
        "processing_time": float(best["processing_time"]),
        "predicted_ops_per_sec": predicted,
        "measured_ops_per_sec": measured_ops_per_sec,
        "prediction_ratio": predicted / measured_ops_per_sec,
    }
