"""The transport contract, and the real-concurrency base transport.

Every layer of the replicated PEATS — the PBFT ordering nodes, the
replica application, the voting client, the sharded cluster and the
unified ``repro.api`` — talks to the network through the small surface
that :class:`~repro.replication.network.SimulatedNetwork` happens to
implement: register a handler, send/broadcast authenticated payloads,
schedule cancellable timers, read a clock, and drive the system until a
condition holds.  :class:`Transport` names that surface explicitly, so
the protocol stack is written against the *interface* and the simulated
network becomes one implementation among several:

================  ===============  ==========================  =========
implementation    time             concurrency                 wire
================  ===============  ==========================  =========
SimulatedNetwork  virtual ms       single-threaded, seeded     in-memory
AsyncioLoopback   wall-clock ms    asyncio reactors (threads)  in-memory
TcpTransport      wall-clock ms    asyncio reactors (threads)  TCP frames
================  ===============  ==========================  =========

:class:`RealTransport` is the shared machinery of the two real
implementations: a pool of **reactors** (one daemon thread running one
asyncio event loop each), node→reactor pinning so a sharded cluster can
give every replica group its own loop, HMAC authentication identical to
the simulated network's, wall-clock timers (:class:`NetTimer`), and
blocking ``run_until``/``run_for`` that *wait* for the background
reactors instead of pumping a queue.  Subclasses only provide
:meth:`RealTransport._dispatch` (how an authenticated payload reaches
the receiving node) plus optional attach/detach hooks.

Threading model
---------------

Each registered node is pinned to exactly one reactor and its handler is
only ever invoked on that reactor's loop, so — exactly as in the
simulation — a node never observes two of its own messages concurrently.
Timers created *inside* a handler fire on the same reactor (the node's
serial context); timers created from a plain thread fire on reactor 0,
which is also where client identities live by default.  Handler
exceptions are caught and counted (``statistics["handler_errors"]``)
so one bad message cannot kill a reactor.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Callable, Hashable, Iterable, Optional, Protocol, runtime_checkable

from repro.errors import SimulationError
from repro.obs import NULL_OBS
from repro.replication.crypto import KeyStore, MessageAuthenticator

__all__ = ["Transport", "NetTimer", "Reactor", "RealTransport"]


@runtime_checkable
class Transport(Protocol):
    """The network contract the replication stack is written against.

    Extracted from :class:`~repro.replication.network.SimulatedNetwork`
    (which implements it structurally, unchanged); the real transports in
    this package implement the same surface over asyncio.  ``timeout``/
    ``delay`` values are **milliseconds of the transport's own clock** —
    virtual for the simulation, wall-clock for the real transports; the
    :attr:`virtual_time` flag and :attr:`time_unit` label tell callers
    which one they are holding.
    """

    #: ``True`` when the clock is simulated (single-threaded, seeded).
    virtual_time: bool
    #: Human-readable unit of ``now``/timeouts (e.g. ``"wall-clock ms"``).
    time_unit: str

    @property
    def authenticator(self) -> MessageAuthenticator: ...

    @property
    def now(self) -> float: ...

    def register(self, node: Hashable, handler: Callable[[Hashable, Any], None]) -> None: ...

    def has_node(self, node: Hashable) -> bool: ...

    def nodes(self) -> tuple[Hashable, ...]: ...

    def send(self, sender: Hashable, receiver: Hashable, payload: Any) -> None: ...

    def broadcast(
        self, sender: Hashable, receivers: Iterable[Hashable], payload: Any
    ) -> None: ...

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> Any: ...

    def schedule_at(self, when: float, callback: Callable[[], None]) -> Any: ...

    def run_until(
        self, condition: Callable[[], bool], *, max_events: int = 1_000_000
    ) -> bool: ...

    def run_for(self, duration: float, *, max_events: int = 1_000_000) -> int: ...

    @property
    def statistics(self) -> dict[str, float]: ...


class NetTimer:
    """A cancellable wall-clock timer armed on one reactor's loop.

    The real-transport counterpart of the simulation's
    :class:`~repro.replication.network.Timer`: same ``cancel()`` surface,
    but backed by ``loop.call_later``.  Arming from a foreign thread is
    marshalled onto the loop; ``cancel()`` is safe from any thread (the
    ``cancelled`` flag is checked at fire time, so a cancel always wins
    even when it races the arming hop).
    """

    __slots__ = ("when", "callback", "cancelled", "_loop", "_handle")

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        when: float,
        delay_ms: float,
        callback: Callable[[], None],
        on_fire: Callable[[Callable[[], None]], None],
    ) -> None:
        self.when = when
        self.callback = callback
        self.cancelled = False
        self._loop = loop
        self._handle: Optional[asyncio.TimerHandle] = None

        def fire() -> None:
            self._handle = None
            if not self.cancelled:
                on_fire(callback)

        def arm() -> None:
            if not self.cancelled:
                self._handle = loop.call_later(max(delay_ms, 0.0) / 1000.0, fire)

        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            arm()
        else:
            loop.call_soon_threadsafe(arm)

    def cancel(self) -> None:
        self.cancelled = True
        handle = self._handle
        if handle is not None:
            try:
                self._loop.call_soon_threadsafe(handle.cancel)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "armed"
        return f"NetTimer(when={self.when:.3f}, {state})"


class Reactor:
    """One daemon thread running one asyncio event loop forever."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()
        self._started.wait()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._started.set)
        self.loop.run_forever()

    def call_soon(self, callback: Callable[[], None]) -> None:
        """Schedule ``callback()`` on this reactor from any thread.

        A no-op once the loop is closed (shutdown races lose quietly).
        """
        try:
            self.loop.call_soon_threadsafe(callback)
        except RuntimeError:
            pass

    def run_coroutine(self, coroutine: Any, *, timeout: float = 10.0) -> Any:
        """Run ``coroutine`` on this reactor and wait for its result."""
        return asyncio.run_coroutine_threadsafe(coroutine, self.loop).result(timeout)

    def stop(self) -> None:
        if self.loop.is_closed():
            return
        try:
            self.run_coroutine(self._drain(), timeout=2.0)
        except Exception:  # pragma: no cover - teardown best effort
            pass
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5.0)
        if not self._thread.is_alive():
            self.loop.close()

    @staticmethod
    async def _drain() -> None:
        """Cancel and await every task so the loop closes without orphans."""
        current = asyncio.current_task()
        tasks = [task for task in asyncio.all_tasks() if task is not current]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Reactor({self.name!r}, running={self._thread.is_alive()})"


class RealTransport:
    """Shared base of the asyncio-backed transports.

    Implements the whole :class:`Transport` contract except the actual
    payload movement: subclasses provide :meth:`_dispatch` (deliver one
    authenticated payload towards ``receiver``) and may override the
    :meth:`_attach`/:meth:`_detach` node lifecycle hooks (the TCP
    transport starts one frame server per node there).
    """

    virtual_time = False
    time_unit = "wall-clock ms"

    def __init__(
        self,
        *,
        reactors: int = 1,
        keystore: KeyStore | None = None,
        default_wait_timeout: float = 30_000.0,
        name: str = "net",
        obs: Any = None,
    ) -> None:
        if reactors < 1:
            raise SimulationError("a real transport needs at least one reactor")
        self.name = name
        self._authenticator = MessageAuthenticator(keystore or KeyStore())
        self._reactors = tuple(
            Reactor(f"repro-{name}-reactor-{index}") for index in range(reactors)
        )
        self._handlers: dict[Hashable, Callable[[Hashable, Any], None]] = {}
        self._pins: dict[Hashable, int] = {}
        self._epoch = time.monotonic()
        self._default_wait_timeout = default_wait_timeout
        self._lock = threading.Lock()
        self._closed = False
        self._delivered = 0
        self._dropped = 0
        self._rejected = 0
        self._timers_fired = 0
        self._handler_errors = 0
        self._frames_sent = 0
        self._bytes_sent = 0
        self._bytes_received = 0
        self._last_handler_error: Optional[BaseException] = None
        self.obs = NULL_OBS if obs is None else obs
        registry = self.obs.registry
        self._flight = self.obs.flight
        labels = {"transport": name}
        self._obs_frames_sent = registry.counter(
            "net_frames_sent_total", "Frames authenticated and dispatched"
        ).labels(**labels)
        self._obs_frames_delivered = registry.counter(
            "net_frames_delivered_total", "Frames verified and handed to a handler"
        ).labels(**labels)
        self._obs_frames_dropped = registry.counter(
            "net_frames_dropped_total", "Frames discarded (no handler / misrouted)"
        ).labels(**labels)
        self._obs_mac_rejects = registry.counter(
            "net_mac_rejects_total", "Frames rejected by MAC/codec verification"
        ).labels(**labels)
        self._obs_handler_errors = registry.counter(
            "net_handler_errors_total", "Exceptions raised by node handlers"
        ).labels(**labels)
        self._obs_bytes_sent = registry.counter(
            "net_bytes_sent_total", "Wire bytes written (0 for in-memory transports)"
        ).labels(**labels)
        self._obs_bytes_received = registry.counter(
            "net_bytes_received_total", "Wire bytes read (0 for in-memory transports)"
        ).labels(**labels)

    # ------------------------------------------------------------------
    # Reactors and pinning
    # ------------------------------------------------------------------

    @property
    def reactor_count(self) -> int:
        return len(self._reactors)

    def pin(self, node: Hashable, reactor: int) -> None:
        """Pin ``node`` (registered or not yet) to one reactor.

        The sharded cluster pins every replica of shard ``k`` to reactor
        ``k % reactor_count`` so each replica group runs on its own event
        loop; unpinned nodes (clients, single-group replicas) live on
        reactor 0.
        """
        if not 0 <= reactor < len(self._reactors):
            raise SimulationError(
                f"no reactor {reactor!r} (transport has {len(self._reactors)})"
            )
        self._pins[node] = reactor

    def reactor_of(self, node: Hashable) -> Reactor:
        return self._reactors[self._pins.get(node, 0)]

    def post(self, node: Hashable, callback: Callable[[], None]) -> None:
        """Run ``callback()`` on ``node``'s reactor as soon as possible.

        This is how cross-thread pokes (the client's view-change nudge)
        reach a node without racing its message handler: everything that
        touches the node's state funnels through its own loop.
        """
        self.reactor_of(node).call_soon(self._guarded(callback))

    def _guarded(self, callback: Callable[[], None]) -> Callable[[], None]:
        def run() -> None:
            try:
                callback()
            except Exception as error:  # noqa: BLE001 - reactor must survive
                with self._lock:
                    self._handler_errors += 1
                    self._last_handler_error = error
                    self._obs_handler_errors.inc()
                if self._flight.enabled:
                    self._flight.record(
                        "net-error",
                        self.name,
                        self.now,
                        error=type(error).__name__,
                        detail=str(error),
                    )

        return run

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    @property
    def authenticator(self) -> MessageAuthenticator:
        return self._authenticator

    def register(self, node: Hashable, handler: Callable[[Hashable, Any], None]) -> None:
        if self._closed:
            raise SimulationError("transport is closed")
        if node in self._handlers:
            raise SimulationError(f"node {node!r} is already registered")
        self._handlers[node] = handler
        self._attach(node)

    def nodes(self) -> tuple[Hashable, ...]:
        return tuple(self._handlers)

    def has_node(self, node: Hashable) -> bool:
        return node in self._handlers

    def _attach(self, node: Hashable) -> None:
        """Subclass hook: the node was registered (start servers, ...)."""

    def _detach(self, node: Hashable) -> None:
        """Subclass hook: the transport is closing (stop servers, ...)."""

    # ------------------------------------------------------------------
    # Clock and timers
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Milliseconds of wall-clock time since the transport started."""
        return (time.monotonic() - self._epoch) * 1000.0

    def _timer_loop(self) -> asyncio.AbstractEventLoop:
        """The loop a new timer belongs to: the current reactor if the
        caller is running on one, reactor 0 otherwise."""
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            return self._reactors[0].loop
        for reactor in self._reactors:
            if reactor.loop is running:
                return running
        return self._reactors[0].loop  # pragma: no cover - foreign loop caller

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> NetTimer:
        if delay < 0:
            raise SimulationError("timer delay cannot be negative")

        def fire(fn: Callable[[], None]) -> None:
            with self._lock:
                self._timers_fired += 1
            self._guarded(fn)()

        return NetTimer(self._timer_loop(), self.now + delay, delay, callback, fire)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> NetTimer:
        return self.schedule_after(max(when - self.now, 0.0), callback)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, sender: Hashable, receiver: Hashable, payload: Any) -> None:
        """Authenticate and dispatch ``payload`` towards ``receiver``.

        Mirrors the simulated network's surface: unknown receivers raise,
        the payload travels with an HMAC under the sender↔receiver shared
        key, and verification happens on the receiving side before the
        handler sees the message.
        """
        if self._closed:
            return
        if not self.has_node(receiver):
            raise SimulationError(f"unknown receiver {receiver!r}")
        mac = self._authenticator.mac(sender, receiver, payload)
        with self._lock:
            self._frames_sent += 1
            self._obs_frames_sent.inc()
        self._dispatch(sender, receiver, payload, mac)

    def broadcast(self, sender: Hashable, receivers: Iterable[Hashable], payload: Any) -> None:
        for receiver in receivers:
            if receiver != sender:
                self.send(sender, receiver, payload)

    def _dispatch(self, sender: Hashable, receiver: Hashable, payload: Any, mac: str) -> None:
        raise NotImplementedError

    def _handle_delivery(self, sender: Hashable, receiver: Hashable, payload: Any, mac: str) -> None:
        """Verify and deliver on the receiver's reactor (call it there)."""
        handler = self._handlers.get(receiver)
        if handler is None:
            with self._lock:
                self._dropped += 1
                self._obs_frames_dropped.inc()
            return
        if not self._authenticator.verify(sender, receiver, payload, mac):
            with self._lock:
                self._rejected += 1
                self._obs_mac_rejects.inc()
            if self._flight.enabled:
                self._flight.record(
                    "net-reject",
                    receiver,
                    self.now,
                    sender=str(sender),
                    reason="bad-mac",
                    type=type(payload).__name__,
                )
            return
        with self._lock:
            self._delivered += 1
            self._obs_frames_delivered.inc()
        self._guarded(lambda: handler(sender, payload))()

    # ------------------------------------------------------------------
    # Driving (wall-clock waiting, not event pumping)
    # ------------------------------------------------------------------

    def run_until(
        self,
        condition: Callable[[], bool],
        *,
        max_events: int = 1_000_000,
        timeout: float | None = None,
    ) -> bool:
        """Wait (wall clock) until ``condition()`` holds.

        The reactors make progress on their own threads; this just blocks
        the calling thread, polling the condition.  Returns the final
        truth value — ``False`` when the wait timed out (default budget:
        the transport's ``default_wait_timeout``), which callers treat
        exactly like the simulation's "queue drained without the
        condition holding".  ``max_events`` is accepted for signature
        parity and ignored.
        """
        budget_ms = self._default_wait_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget_ms / 1000.0
        wait = 0.0002
        while not condition():
            if time.monotonic() >= deadline:
                return bool(condition())
            time.sleep(wait)
            wait = min(wait * 2, 0.005)
        return True

    def run_for(self, duration: float, *, max_events: int = 1_000_000) -> int:
        """Let the reactors run for ``duration`` wall-clock milliseconds."""
        if duration < 0:
            raise SimulationError("duration cannot be negative")
        time.sleep(duration / 1000.0)
        return 0

    # ------------------------------------------------------------------
    # Lifecycle and statistics
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop every reactor (idempotent).  Nodes cannot be re-registered."""
        if self._closed:
            return
        self._closed = True
        for node in list(self._handlers):
            self._detach(node)
        for reactor in self._reactors:
            reactor.stop()

    def __enter__(self) -> "RealTransport":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def last_handler_error(self) -> Optional[BaseException]:
        return self._last_handler_error

    @property
    def statistics(self) -> dict[str, float]:
        with self._lock:
            return {
                "now": self.now,
                "delivered": self._delivered,
                "dropped": self._dropped,
                "rejected": self._rejected,
                "timers_fired": self._timers_fired,
                "handler_errors": self._handler_errors,
                "frames_sent": self._frames_sent,
                "bytes_sent": self._bytes_sent,
                "bytes_received": self._bytes_received,
                "pending": 0,
            }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(reactors={len(self._reactors)}, "
            f"nodes={len(self._handlers)}, delivered={self._delivered})"
        )
