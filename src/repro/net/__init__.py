"""repro.net — real-network substrates behind the simulation's contract.

The deployment ladder of the reproduction, bottom to top:

1. :class:`~repro.replication.network.SimulatedNetwork` — virtual time,
   one thread, seeded; every deterministic test and scenario runs here.
2. :class:`AsyncioLoopbackTransport` — the same contract on real asyncio
   event loops (daemon-thread reactors) with wall-clock timers and
   in-memory delivery; the calibration target for the sim's
   ``processing_time`` model.
3. :class:`TcpTransport` — length-prefixed msgpack/JSON frames over
   ``asyncio.start_server`` for multi-process deployment.

All three implement the :class:`Transport` protocol, so the PBFT
ordering layer, the replica application, the voting client, the sharded
cluster and the unified API run unmodified on any of them::

    from repro.api import connect

    space = connect("replicated", policy=policy, transport="asyncio")
    space = connect("sharded", policy=policy, shards=4, transport="tcp")

A sharded deployment on a real transport gets **one reactor per replica
group** (see :meth:`~repro.net.transport.RealTransport.pin`), so the
cluster's parallelism is real, not just simulated.
"""

from repro.net.transport import NetTimer, Reactor, RealTransport, Transport
from repro.net.loopback import AsyncioLoopbackTransport
from repro.net.tcp import TcpTransport
from repro.net.codec import CodecError
from repro.net.calibration import calibrate_processing_time, latency_summary

__all__ = [
    "Transport",
    "NetTimer",
    "Reactor",
    "RealTransport",
    "AsyncioLoopbackTransport",
    "TcpTransport",
    "CodecError",
    "calibrate_processing_time",
    "latency_summary",
]
