"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
the package can also be installed in environments whose tooling predates
PEP 660 editable installs (``python setup.py develop`` or legacy
``pip install -e . --no-use-pep517``), including fully offline machines
without the ``wheel`` package.
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
