"""Setuptools packaging for the PEATS reproduction library.

The library is pure Python with no *required* third-party runtime
dependencies, so the metadata lives right here (no ``pyproject.toml`` is
required); the file also keeps legacy flows working (``python setup.py
develop`` or ``pip install -e . --no-use-pep517``) on fully offline
machines without the ``wheel`` package.  Packages are discovered from
``src/`` so newly added subpackages (e.g. ``repro.net``) are picked up
automatically.

The ``[net]`` extra pulls in the optional ``msgpack`` accelerator for
the TCP transport's wire frames; without it :mod:`repro.net` falls back
to the always-available JSON framing (the two interoperate — frames are
tagged with their format).
"""

from setuptools import find_packages, setup

if __name__ == "__main__":
    setup(
        name="repro-peats",
        version="0.5.0",
        description=(
            "Reproduction of policy-enforced augmented tuple spaces (PEATS) "
            "with simulated and real-network (asyncio/TCP) BFT replicated "
            "and sharded deployments"
        ),
        package_dir={"": "src"},
        packages=find_packages("src"),
        python_requires=">=3.10",
        extras_require={
            # Optional msgpack framing for repro.net's TCP transport; the
            # JSON fallback needs nothing.
            "net": ["msgpack>=1.0"],
        },
    )
