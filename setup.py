"""Setuptools packaging for the PEATS reproduction library.

The library is pure Python with no third-party runtime dependencies, so
the metadata lives right here (no ``pyproject.toml`` is required); the
file also keeps legacy flows working (``python setup.py develop`` or
``pip install -e . --no-use-pep517``) on fully offline machines without
the ``wheel`` package.  Packages are discovered from ``src/`` so newly
added subpackages (e.g. ``repro.cluster``) are picked up automatically.
"""

from setuptools import find_packages, setup

if __name__ == "__main__":
    setup(
        name="repro-peats",
        version="0.3.0",
        description=(
            "Reproduction of policy-enforced augmented tuple spaces (PEATS) "
            "with a simulated BFT replicated and sharded deployment"
        ),
        package_dir={"": "src"},
        packages=find_packages("src"),
        python_requires=">=3.10",
    )
