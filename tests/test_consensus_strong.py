"""Tests for Algorithm 2 — strong binary and k-valued consensus."""

import pytest

from repro.consensus import StrongConsensus, run_consensus, run_consensus_threaded
from repro.consensus.base import check_agreement, check_strong_validity
from repro.errors import ResilienceError, TerminationError
from repro.model.faults import (
    double_proposing_byzantine,
    impersonating_byzantine,
    silent_byzantine,
    spamming_byzantine,
    unjustified_deciding_byzantine,
)
from repro.model.scheduler import random_schedule, reversed_schedule


class TestConstruction:
    def test_resilience_enforced_by_default(self):
        with pytest.raises(ResilienceError):
            StrongConsensus(range(3), 1)

    def test_resilience_bound_is_k_plus_one_t_plus_one(self):
        with pytest.raises(ResilienceError):
            StrongConsensus(range(7), 2, values=(0, 1, 2))  # needs (3+1)*2+1 = 9
        with pytest.raises(ResilienceError):
            StrongConsensus(range(10), 2, values=(0, 1, 2, 4))  # needs 11
        StrongConsensus(range(10), 3)  # binary: 3t + 1 = 10 is enough
        StrongConsensus(range(9), 2, values=(0, 1, 2))  # k-valued bound met exactly

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError):
            StrongConsensus(range(4), 1, values=(0, 0))

    def test_enforcement_can_be_disabled(self):
        consensus = StrongConsensus(range(3), 1, enforce_resilience=False)
        assert consensus.t == 1


class TestAllCorrect:
    def test_unanimous_binary(self):
        consensus = StrongConsensus(range(4), 1)
        run = run_consensus(consensus, {p: 1 for p in range(4)})
        assert run.terminated and run.decision() == 1

    def test_mixed_binary_decides_a_correctly_proposed_value(self):
        consensus = StrongConsensus(range(4), 1)
        proposals = {0: 0, 1: 1, 2: 1, 3: 0}
        run = run_consensus(consensus, proposals)
        assert run.terminated
        assert check_agreement(run.outcomes.values())
        assert check_strong_validity(run.outcomes.values(), proposals.values())

    def test_larger_population(self):
        consensus = StrongConsensus(range(10), 3)
        proposals = {p: p % 2 for p in range(10)}
        run = run_consensus(consensus, proposals)
        assert run.terminated
        assert check_agreement(run.outcomes.values())

    def test_k_valued(self):
        values = (0, 1, 2)
        consensus = StrongConsensus(range(8), 2, values=values, enforce_resilience=False)
        # 8 >= (3+1)*2+1 is false (9); use t=1 instead for a clean run.
        consensus = StrongConsensus(range(8), 1, values=values)
        proposals = {p: p % 3 for p in range(8)}
        run = run_consensus(consensus, proposals)
        assert run.terminated
        assert check_agreement(run.outcomes.values())
        assert check_strong_validity(run.outcomes.values(), proposals.values())

    def test_decision_view(self):
        consensus = StrongConsensus(range(4), 1)
        assert consensus.decision() is None
        run_consensus(consensus, {p: 1 for p in range(4)})
        assert consensus.decision() == 1


class TestWithByzantineProcesses:
    def test_silent_byzantine_process(self):
        consensus = StrongConsensus(range(4), 1)
        proposals = {0: 1, 1: 1, 2: 1}
        run = run_consensus(consensus, proposals, byzantine={3: silent_byzantine})
        assert run.terminated
        assert run.decision() == 1

    def test_strong_validity_with_adversarial_minority(self):
        # All correct processes propose 1; the Byzantine process proposes 0
        # and also tries to decide 0 with a fake justification — it must not
        # be able to make 0 the decision.
        consensus = StrongConsensus(range(4), 1)
        proposals = {0: 1, 1: 1, 2: 1}
        run = run_consensus(
            consensus,
            proposals,
            byzantine={3: unjustified_deciding_byzantine(value=0, fake_supporters=(3, 2))},
        )
        assert run.terminated
        assert run.decision() == 1

    def test_double_proposal_is_neutralised(self):
        consensus = StrongConsensus(range(4), 1)
        proposals = {0: 0, 1: 0, 2: 0}
        run = run_consensus(
            consensus, proposals, byzantine={3: double_proposing_byzantine(1, 0)}
        )
        assert run.terminated
        assert run.decision() == 0

    def test_impersonation_is_rejected(self):
        consensus = StrongConsensus(range(4), 1)
        proposals = {0: 1, 1: 1, 2: 1}
        run = run_consensus(
            consensus, proposals, byzantine={3: impersonating_byzantine(victim=0, value=0)}
        )
        assert run.terminated and run.decision() == 1

    def test_spammer_does_not_break_safety(self):
        consensus = StrongConsensus(range(7), 2)
        proposals = {p: 1 for p in range(5)}
        run = run_consensus(
            consensus, proposals, byzantine={5: spamming_byzantine(), 6: silent_byzantine}
        )
        assert run.terminated and run.decision() == 1


class TestSchedulesAndLiveness:
    def test_agreement_under_adversarial_and_random_schedules(self):
        for schedule in (reversed_schedule, random_schedule(7), random_schedule(99)):
            consensus = StrongConsensus(range(4), 1)
            proposals = {0: 0, 1: 1, 2: 0, 3: 1}
            run = run_consensus(consensus, proposals, schedule=schedule)
            assert run.terminated
            assert check_agreement(run.outcomes.values())

    def test_non_termination_below_quorum_of_proposers(self):
        # Only t proposers per value and silent others: no value reaches
        # t + 1, so the algorithm must not terminate (t-threshold liveness
        # requires n - t participants).
        consensus = StrongConsensus(range(4), 1)
        run = run_consensus(consensus, {0: 0, 1: 1}, max_rounds=50)
        assert not run.terminated

    def test_propose_raises_termination_error_when_starved(self):
        consensus = StrongConsensus(range(4), 1)
        with pytest.raises(TerminationError):
            consensus.propose(0, 1, max_iterations=20)

    def test_threaded_runner(self):
        consensus = StrongConsensus(range(4), 1)
        run = run_consensus_threaded(consensus, {p: p % 2 for p in range(4)})
        assert run.terminated
        assert check_agreement(run.outcomes.values())


class TestMemoryShape:
    def test_space_holds_n_proposals_and_one_decision(self):
        consensus = StrongConsensus(range(4), 1)
        run_consensus(consensus, {p: 1 for p in range(4)})
        census = {}
        for stored in consensus.space.snapshot():
            census[stored.fields[0]] = census.get(stored.fields[0], 0) + 1
        assert census == {"PROPOSE": 4, "DECISION": 1}

    def test_decision_justification_has_t_plus_one_members(self):
        consensus = StrongConsensus(range(4), 1)
        run_consensus(consensus, {p: 1 for p in range(4)})
        decision_tuples = [
            stored for stored in consensus.space.snapshot() if stored.fields[0] == "DECISION"
        ]
        assert len(decision_tuples) == 1
        assert len(decision_tuples[0].fields[2]) >= consensus.t + 1
