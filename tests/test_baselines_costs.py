"""Tests for the closed-form cost models (experiment E1 inputs)."""

import math

import pytest

from repro.baselines import costs


class TestLogCeil:
    def test_values(self):
        assert costs.log_ceil(1) == 1
        assert costs.log_ceil(2) == 1
        assert costs.log_ceil(13) == 4
        assert costs.log_ceil(1024) == 10

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            costs.log_ceil(0)


class TestPaperFormulas:
    def test_strong_consensus_formula_matches_section_5_2(self):
        n, t = 13, 4
        id_bits = math.ceil(math.log2(n))
        expected = n * (id_bits + 1) + (1 + (t + 1) * id_bits)
        assert costs.peats_strong_consensus_bits(n, t) == expected

    def test_alon_footnote_value_1764_sticky_bits(self):
        # Footnote 4: t = 4, n = 13 → 1,764 sticky bits.
        assert costs.alon_sticky_bits(13, 4) == 1764

    def test_peats_orders_of_magnitude_below_alon(self):
        # The headline comparison: the PEATS cost is tens of bits where the
        # sticky-bit algorithm needs thousands, and the gap explodes with t.
        # (At t = 1 the two are comparable — 17 bits vs 15 sticky bits — the
        # exponential separation kicks in from t = 2 onwards.)
        for t in range(2, 8):
            n = 3 * t + 1
            assert costs.peats_strong_consensus_bits(n, t) < costs.alon_sticky_bits(n, t)
        assert costs.alon_sticky_bits(31, 10) / costs.peats_strong_consensus_bits(31, 10) > 1000

    def test_weak_consensus_bits(self):
        assert costs.peats_weak_consensus_bits(2) == 1
        assert costs.peats_weak_consensus_bits(16) == 4
        with pytest.raises(ValueError):
            costs.peats_weak_consensus_bits(1)

    def test_multivalued_bits_scale_with_log_of_domain(self):
        small = costs.peats_multivalued_consensus_bits(10, 3, 2)
        large = costs.peats_multivalued_consensus_bits(10, 3, 1024)
        assert large > small
        # O(n (log n + log |V|)): growth is additive in log |V|, not multiplicative.
        assert large - small == (10 + 1) * (10 - 1)

    def test_malkhi_profile(self):
        assert costs.malkhi_sticky_bits(4) == 9
        assert costs.malkhi_min_processes(4) == 45
        assert costs.malkhi_min_processes(1) == 6

    def test_resilience_bounds(self):
        assert costs.peats_min_processes(4) == 13
        assert costs.alon_min_processes(4) == 13
        assert costs.min_processes_k_valued(2, 3) == 9

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            costs.peats_strong_consensus_bits(0, 1)
        with pytest.raises(ValueError):
            costs.alon_sticky_bits(4, -1)
        with pytest.raises(ValueError):
            costs.malkhi_sticky_bits(-1)


class TestComparisonTable:
    def test_rows_cover_requested_t_values(self):
        rows = costs.comparison_table([1, 2, 4])
        assert [row["t"] for row in rows] == [1, 2, 4]
        assert [row["n"] for row in rows] == [4, 7, 13]

    def test_t4_row_matches_footnotes(self):
        (row,) = costs.comparison_table([4])
        assert row["alon_sticky_bits"] == 1764
        assert row["malkhi_sticky_bits"] == 9
        assert row["malkhi_required_n"] == 45
        assert row["peats_bits"] == costs.peats_strong_consensus_bits(13, 4)

    def test_peats_cheapest_in_bits_at_optimal_resilience_for_t_at_least_2(self):
        for row in costs.comparison_table(range(2, 10)):
            assert row["peats_bits"] < row["alon_sticky_bits"]
