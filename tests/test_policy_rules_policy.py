"""Unit tests for rules, policies and fail-safe defaults."""

import pytest

from repro.policy import AccessPolicy, Rule, invoker_in, lift
from repro.policy.invocation import Invocation


def invocation(process="p1", operation="write", arguments=()):
    return Invocation(process=process, operation=operation, arguments=tuple(arguments))


class TestRule:
    def test_requires_names(self):
        with pytest.raises(ValueError):
            Rule("", "write")
        with pytest.raises(ValueError):
            Rule("R", "")

    def test_default_condition_allows(self):
        rule = Rule("Rread", "read")
        assert rule.grants(invocation(operation="read"), None)

    def test_rule_only_applies_to_its_operation(self):
        rule = Rule("Rread", "read")
        assert not rule.applies_to(invocation(operation="write"))
        assert not rule.grants(invocation(operation="write"), None)

    def test_arity_constraint(self):
        rule = Rule("Rwrite", "write", arity=1)
        assert rule.applies_to(invocation(arguments=(1,)))
        assert not rule.applies_to(invocation(arguments=(1, 2)))

    def test_plain_callable_condition_is_lifted(self):
        rule = Rule("Rwrite", "write", lambda inv, st: inv.process == "p1")
        assert rule.grants(invocation("p1"), None)
        assert not rule.grants(invocation("p2"), None)


class TestAccessPolicy:
    def test_rejects_duplicate_rule_names(self):
        with pytest.raises(ValueError):
            AccessPolicy([Rule("R", "read"), Rule("R", "write")])

    def test_fail_safe_default_denies_unknown_operations(self):
        policy = AccessPolicy([Rule("Rread", "read")], name="test")
        allowed, rule, reason = policy.evaluate(invocation(operation="write"), None)
        assert not allowed
        assert rule is None
        assert "deny" in reason.lower()

    def test_first_granting_rule_wins(self):
        policy = AccessPolicy(
            [
                Rule("Ra", "write", invoker_in({"p9"})),
                Rule("Rb", "write", invoker_in({"p1"})),
            ]
        )
        allowed, rule, _ = policy.evaluate(invocation("p1"), None)
        assert allowed and rule.name == "Rb"

    def test_all_applicable_rules_false_denies(self):
        policy = AccessPolicy([Rule("Ra", "write", invoker_in({"p9"}))])
        allowed, rule, reason = policy.evaluate(invocation("p1"), None)
        assert not allowed and rule is None
        assert "Ra" in reason

    def test_evaluation_error_denies(self):
        policy = AccessPolicy([Rule("Rboom", "write", lift("boom", lambda inv, st: 1 / 0))])
        allowed, _, reason = policy.evaluate(invocation(), None)
        assert not allowed
        assert "evaluation failed" in reason

    def test_with_rule_returns_extended_copy(self):
        policy = AccessPolicy([Rule("Rread", "read")], name="base")
        extended = policy.with_rule(Rule("Rwrite", "write"))
        assert len(policy) == 1
        assert len(extended) == 2
        assert extended.evaluate(invocation(operation="write"), None)[0]

    def test_allowed_operations_and_rules_for(self):
        policy = AccessPolicy([Rule("Rr", "read"), Rule("Rw", "write"), Rule("Rw2", "write")])
        assert policy.allowed_operations() == {"read", "write"}
        assert len(policy.rules_for("write")) == 2

    def test_iteration(self):
        policy = AccessPolicy([Rule("Rr", "read")])
        assert [r.name for r in policy] == ["Rr"]
