"""repro.obs.registry — label semantics, exporters, merge, null overhead."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    Observability,
    NULL_OBS,
)


# ----------------------------------------------------------------------
# Label identity and family semantics
# ----------------------------------------------------------------------


def test_labels_are_order_insensitive_and_value_stringified():
    registry = MetricsRegistry()
    counter = registry.counter("ops_total", "ops")
    counter.labels(node="0", op="out").inc()
    counter.labels(op="out", node=0).inc(2.0)  # same identity, reordered + int
    (sample,) = registry.snapshot()["ops_total"]["samples"]
    assert sample["labels"] == {"node": "0", "op": "out"}
    assert sample["value"] == 3.0


def test_bare_and_labelled_children_are_distinct():
    registry = MetricsRegistry()
    counter = registry.counter("c", "")
    counter.inc()  # family-level convenience = bare child
    counter.labels(k="v").inc(5.0)
    values = {
        tuple(sorted(s["labels"].items())): s["value"]
        for s in registry.snapshot()["c"]["samples"]
    }
    assert values == {(): 1.0, (("k", "v"),): 5.0}


def test_get_or_create_returns_same_family_and_rejects_kind_conflicts():
    registry = MetricsRegistry()
    first = registry.counter("n", "help")
    assert registry.counter("n") is first
    with pytest.raises(TypeError):
        registry.gauge("n")
    with pytest.raises(TypeError):
        registry.histogram("n")
    registry.histogram("h")
    with pytest.raises(TypeError):
        registry.counter("h")


def test_gauge_set_inc_dec():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    gauge.set(10.0)
    gauge.inc(2.0)
    gauge.dec()
    assert gauge.value == 11.0


def test_histogram_buckets_are_cumulative_and_end_at_inf():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat", buckets=(1.0, 10.0))
    for value in (0.5, 0.7, 5.0, 100.0):
        histogram.observe(value)
    (sample,) = registry.snapshot()["lat"]["samples"]
    assert sample["count"] == 4
    assert sample["sum"] == pytest.approx(106.2)
    assert sample["buckets"] == {"1": 2, "10": 3, "+Inf": 4}


def test_snapshot_iteration_order_is_creation_order():
    registry = MetricsRegistry()
    for name in ("zeta", "alpha", "mid"):
        registry.counter(name).inc()
    assert list(registry.snapshot()) == ["zeta", "alpha", "mid"]


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def test_prometheus_text_escapes_labels_and_help():
    registry = MetricsRegistry()
    counter = registry.counter("weird_total", 'has \\ and\nnewline')
    counter.labels(path='a\\b', quote='say "hi"', nl="x\ny").inc()
    text = registry.to_prometheus_text()
    assert '# HELP weird_total has \\\\ and\\nnewline' in text
    assert 'path="a\\\\b"' in text
    assert 'quote="say \\"hi\\""' in text
    assert 'nl="x\\ny"' in text
    assert text.endswith("\n")


def test_prometheus_text_histogram_series():
    registry = MetricsRegistry()
    registry.histogram("lat", "latency", buckets=(1.0,)).labels(node="0").observe(0.5)
    text = registry.to_prometheus_text()
    assert '# TYPE lat histogram' in text
    assert 'lat_bucket{node="0",le="1"} 1' in text
    assert 'lat_bucket{node="0",le="+Inf"} 1' in text
    assert 'lat_sum{node="0"} 0.5' in text
    assert 'lat_count{node="0"} 1' in text


def test_json_lines_round_trips():
    registry = MetricsRegistry()
    registry.counter("a").labels(x="1").inc(2.0)
    registry.gauge("b").set(7.0)
    records = [json.loads(line) for line in registry.to_json_lines().splitlines()]
    assert {r["name"] for r in records} == {"a", "b"}
    by_name = {r["name"]: r for r in records}
    assert by_name["a"]["value"] == 2.0 and by_name["a"]["labels"] == {"x": "1"}
    assert by_name["b"]["kind"] == "gauge"


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------


def test_merge_sums_counters_histograms_and_overwrites_gauges():
    left, right = MetricsRegistry(), MetricsRegistry()
    for registry, amount in ((left, 1.0), (right, 2.0)):
        registry.counter("ops").labels(shard="0").inc(amount)
        registry.gauge("depth").set(amount)
        registry.histogram("lat", buckets=(1.0,)).observe(amount)
    left.merge(right)
    snap = left.snapshot()
    assert snap["ops"]["samples"][0]["value"] == 3.0
    assert snap["depth"]["samples"][0]["value"] == 2.0
    lat = snap["lat"]["samples"][0]
    assert lat["count"] == 2 and lat["sum"] == pytest.approx(3.0)
    assert lat["buckets"] == {"1": 1, "+Inf": 2}


def test_merge_rejects_mismatched_histogram_buckets():
    left, right = MetricsRegistry(), MetricsRegistry()
    left.histogram("lat", buckets=(1.0,))
    right.histogram("lat", buckets=(2.0,)).observe(0.5)
    with pytest.raises(ValueError):
        left.merge(right)


# ----------------------------------------------------------------------
# Null objects: disabled observability costs ~nothing and exports nothing
# ----------------------------------------------------------------------


def test_null_registry_hands_out_shared_noop_child():
    child = NULL_REGISTRY.counter("anything", "help").labels(a="b")
    assert child is NULL_REGISTRY.histogram("other")
    child.inc()
    child.observe(3.0)
    child.set(1.0)
    assert NULL_REGISTRY.snapshot() == {}
    assert NULL_REGISTRY.to_prometheus_text() == ""
    assert NULL_REGISTRY.to_json_lines() == ""
    assert not NULL_REGISTRY.enabled and not NULL_OBS.enabled


def test_null_registry_overhead_smoke():
    """The disabled hot path must stay within a small factor of a bare
    no-op call — it is a pre-bound no-op method, not a formatting path."""
    null_child = NULL_OBS.registry.counter("x").labels()
    live_child = MetricsRegistry().counter("x").labels()
    n = 50_000

    def timed(fn) -> float:
        started = time.perf_counter()
        for _ in range(n):
            fn()
        return time.perf_counter() - started

    null_cost = min(timed(null_child.inc) for _ in range(3))
    live_cost = min(timed(live_child.inc) for _ in range(3))
    # The no-op must not be slower than ~3x the live increment (generous:
    # both are single attribute calls; a formatting/lookup regression on
    # the disabled path would blow far past this).
    assert null_cost < live_cost * 3 + 0.05


def test_default_buckets_are_sorted_and_positive():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert all(bound > 0 for bound in DEFAULT_BUCKETS)


def test_observability_snapshot_bundles_metrics_and_tracing():
    obs = Observability()
    obs.registry.counter("ops").inc()
    obs.tracer.record("submit", ("c", 0), "c", 1.0)
    snap = obs.snapshot()
    assert snap["metrics"]["ops"]["samples"][0]["value"] == 1.0
    assert snap["tracing"]["requests"] == 1
