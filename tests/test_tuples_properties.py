"""Property-based tests for the tuple/matching laws (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tuples import ANY, Entry, Formal, Template, bind, entry, matches, template

# Field values that are always hashable and comparable.  Booleans are left
# out on purpose: Python's ``1 == True`` would make "equal entries" and
# "matching entries" diverge, and the bool/int distinction has dedicated
# unit tests in test_tuples_matching.py.
field_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(min_size=0, max_size=8),
    st.none(),
)

entries = st.lists(field_values, min_size=1, max_size=5).map(lambda fields: Entry(fields))


@st.composite
def entry_with_matching_template(draw):
    """An entry plus a template derived from it by masking random fields."""
    fields = draw(st.lists(field_values, min_size=1, max_size=5))
    masked = []
    formal_counter = 0
    for value in fields:
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            masked.append(value)
        elif choice == 1:
            masked.append(ANY)
        else:
            masked.append(Formal(f"f{formal_counter}"))
            formal_counter += 1
    return Entry(fields), Template(masked)


@given(entries)
def test_entry_matches_its_own_template(e):
    assert matches(e, e.to_template())


@given(entries)
def test_entry_matches_all_wildcards_of_same_arity(e):
    assert matches(e, Template([ANY] * e.arity))


@given(entries)
def test_entry_never_matches_different_arity(e):
    assert not matches(e, Template([ANY] * (e.arity + 1)))


@given(entry_with_matching_template())
def test_masking_fields_preserves_matching(pair):
    e, t = pair
    assert matches(e, t)


@given(entry_with_matching_template())
def test_bind_returns_entry_values_at_formal_positions(pair):
    e, t = pair
    bindings = bind(e, t)
    assert bindings is not None
    for position, field in enumerate(t.fields):
        if isinstance(field, Formal):
            assert bindings[field.name] == e.fields[position]


@given(entries, entries)
def test_matching_requires_equal_defined_fields(e1, e2):
    # If two entries differ, neither matches the other used as a pattern.
    if e1 != e2:
        assert not (matches(e1, e2) and matches(e2, e1))
    else:
        assert matches(e1, e2)


@given(entries)
def test_entries_are_hashable_and_equal_to_themselves(e):
    assert hash(e) == hash(Entry(e.fields))
    assert e == Entry(e.fields)


@given(st.lists(field_values, min_size=1, max_size=5))
def test_entry_type_signature_matches_field_types(fields):
    e = Entry(fields)
    signature = e.type_signature()
    assert len(signature) == len(fields)
    for value, type_ in zip(fields, signature):
        assert isinstance(value, type_) or (value is None and type_ is type(None))
