"""Unit tests for history recording, replay and consistency checking."""

from repro.tspace.history import (
    HistoryRecorder,
    OperationRecord,
    check_sequential_consistency,
    replay_history,
)
from repro.tuples import ANY, Formal, entry, template


def record(sequence, operation, arguments, result, process="p", denied=False):
    return OperationRecord(
        sequence=sequence,
        process=process,
        operation=operation,
        arguments=tuple(arguments),
        result=result,
        denied=denied,
    )


class TestRecorder:
    def test_sequence_numbers_are_monotonic(self):
        recorder = HistoryRecorder()
        first = recorder.record(process="p", operation="out", arguments=(entry("A", 1),), result=True)
        second = recorder.record(process="p", operation="out", arguments=(entry("A", 2),), result=True)
        assert second.sequence == first.sequence + 1

    def test_len_iter_and_clear(self):
        recorder = HistoryRecorder()
        recorder.record(process="p", operation="out", arguments=(entry("A", 1),), result=True)
        assert len(recorder) == 1
        assert list(recorder)[0].operation == "out"
        recorder.clear()
        assert len(recorder) == 0

    def test_denied_count(self):
        recorder = HistoryRecorder()
        recorder.record(process="p", operation="out", arguments=(), result=False, denied=True)
        recorder.record(process="p", operation="out", arguments=(), result=True)
        assert recorder.denied_count() == 1


class TestReplay:
    def test_consistent_history_has_no_violations(self):
        history = [
            record(0, "out", (entry("A", 1),), True),
            record(1, "rdp", (template("A", ANY),), entry("A", 1)),
            record(2, "cas", (template("D", Formal("v")), entry("D", 1)), (True, None)),
            record(3, "cas", (template("D", Formal("v")), entry("D", 2)), (False, entry("D", 1))),
            record(4, "inp", (template("A", ANY),), entry("A", 1)),
            record(5, "inp", (template("A", ANY),), None),
        ]
        assert check_sequential_consistency(history) == []

    def test_phantom_read_is_detected(self):
        history = [
            record(0, "rdp", (template("A", ANY),), entry("A", 1)),
        ]
        violations = check_sequential_consistency(history)
        assert violations and "non-matching" not in violations[0]

    def test_missed_read_is_detected(self):
        history = [
            record(0, "out", (entry("A", 1),), True),
            record(1, "rdp", (template("A", ANY),), None),
        ]
        assert check_sequential_consistency(history)

    def test_double_cas_success_is_detected(self):
        history = [
            record(0, "cas", (template("D", Formal("v")), entry("D", 1)), (True, None)),
            record(1, "cas", (template("D", Formal("v")), entry("D", 2)), (True, None)),
        ]
        assert check_sequential_consistency(history)

    def test_denied_operations_do_not_affect_state(self):
        history = [
            record(0, "out", (entry("A", 1),), False, denied=True),
            record(1, "rdp", (template("A", ANY),), None),
        ]
        assert check_sequential_consistency(history) == []

    def test_replay_returns_final_state(self):
        history = [
            record(0, "out", (entry("A", 1),), True),
            record(1, "out", (entry("B", 2),), True),
            record(2, "inp", (template("A", ANY),), entry("A", 1)),
        ]
        state, violations = replay_history(history)
        assert violations == []
        assert state == [entry("B", 2)]

    def test_unknown_operations_are_ignored(self):
        history = [record(0, "frobnicate", (), None)]
        assert check_sequential_consistency(history) == []
