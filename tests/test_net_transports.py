"""Transport conformance: one program, three substrates, equal results.

The acceptance bar of the ``repro.net`` subsystem: the lock-recipe
program from ``examples/unified_api_tour.py`` must produce observably
equivalent results on the deterministic :class:`SimulatedNetwork`, the
in-process :class:`AsyncioLoopbackTransport` and the localhost
:class:`TcpTransport` — for both the single replicated group and the
sharded cluster (two groups, one reactor per group).  Alongside the
conformance matrix, this file pins the transport contract itself:
timers, MAC authentication on the wire, reactor pinning, the cross-
thread future bridge, and lifecycle/teardown behaviour.
"""

from __future__ import annotations

import socket
import struct
import time

import pytest

from repro.api import connect
from repro.errors import OperationTimeoutError, SimulationError
from repro.net import AsyncioLoopbackTransport, TcpTransport, Transport, codec
from repro.net.transport import RealTransport
from repro.policy import AccessPolicy, Rule
from repro.replication.network import SimulatedNetwork
from repro.tuples import ANY, entry, template

#: Wall-clock guard for every wait in this file (milliseconds).
WAIT_MS = 20_000.0


def open_policy() -> AccessPolicy:
    return AccessPolicy(
        [Rule(op, op) for op in ("out", "rdp", "inp", "cas")], name="net-open"
    )


def lock_program(space, timeout: float) -> tuple:
    """The unified-API tour's mutex-token recipe, backend-agnostic."""
    alice, bob = space.bind("alice"), space.bind("bob")
    alice.out(entry("LOCK", "free"))
    first_take = alice.inp(template("LOCK", "free"))
    blocked = bob.inp(template("LOCK", "free"))
    alice.out(entry("LOCK", "free"))
    token = bob.in_(template("LOCK", ANY), timeout=timeout)
    try:
        bob.rd(template("NEVER", ANY), timeout=min(timeout, 250.0))
    except OperationTimeoutError:
        timed_out = True
    else:
        timed_out = False
    return (
        first_take is not None,
        blocked is None,
        token.fields[1],
        timed_out,
    )


def build_space(backend: str, transport):
    if backend == "replicated":
        return connect("replicated", policy=open_policy(), f=1, transport=transport)
    return connect(
        "sharded", policy=open_policy(), shards=2, f=1, transport=transport
    )


@pytest.mark.parametrize("backend", ["replicated", "sharded"])
def test_lock_recipe_equivalent_on_all_transports(backend):
    reference = None
    for transport in (None, "asyncio", "tcp"):
        space = build_space(backend, transport)
        try:
            outcome = lock_program(space, timeout=1_000.0)
        finally:
            space.close()
        if reference is None:
            reference = outcome
        assert outcome == reference, (
            f"{backend} on {transport or 'sim'}: {outcome} != {reference}"
        )
    assert reference == (True, True, "free", True)


def escrow_program(space) -> tuple:
    """One committed cross-shard transfer, one no-match abort."""
    teller = space.bind("teller")
    teller.out(entry("SRC", "tok"))
    moved = teller.transfer(template("SRC", ANY), entry("DST", "tok"))
    drained = (
        space.transact("teller")
        .in_(template("SRC", ANY))  # already moved: no match, clean abort
        .out(entry("DST", "ghost"))
        .commit()
    )
    stats = space.stats()["txn"]
    return (
        moved.committed,
        moved.results[0].fields[1],
        drained.committed,
        drained.reason,
        tuple(sorted(repr(item) for item in space.snapshot())),
        stats["committed"],
        stats["aborted"],
    )


def test_escrow_transfer_equivalent_on_all_transports():
    # The replicated-coordinator atomic commit (prepare, ordered votes,
    # pushed certificates, decision, apply) must behave identically on
    # the virtual-time simulation and on both real reactors.
    from repro.cluster import ExplicitRouting

    reference = None
    for transport in (None, "asyncio", "tcp"):
        space = connect(
            "sharded",
            policy=open_policy(),
            shards=2,
            f=1,
            routing=ExplicitRouting({"SRC": 0, "DST": 1}),
            transport=transport,
        )
        try:
            outcome = escrow_program(space)
        finally:
            space.close()
        if reference is None:
            reference = outcome
        assert outcome == reference, (
            f"txn on {transport or 'sim'}: {outcome} != {reference}"
        )
    assert reference[:4] == (True, "tok", False, ("no-match", 0))
    assert reference[4] == ("Entry('DST', 'tok')",)
    assert reference[5:] == (1, {"no-match": 1})


def test_sharded_cluster_gets_one_reactor_per_group():
    space = build_space("sharded", "asyncio")
    try:
        net = space.network
        assert net.reactor_count == 2
        shard0 = {net.reactor_of(f"shard-0:replica-{i}") for i in range(4)}
        shard1 = {net.reactor_of(f"shard-1:replica-{i}") for i in range(4)}
        assert len(shard0) == 1 and len(shard1) == 1
        assert shard0 != shard1, "replica groups must not share a reactor"
        # Clients stay on reactor 0 (their handlers serialise there).
        assert net.reactor_of("alice") is next(iter(shard0))
    finally:
        space.close()


def test_scatter_gather_runs_on_real_transport():
    space = build_space("sharded", "asyncio")
    try:
        view = space.bind("p1")
        view.out(entry("A", 1))
        view.out(entry("B", 2))
        probe = view.submit_rdp(template(ANY, ANY))
        assert probe.wait(WAIT_MS / 1000.0)
        status, value = probe.result()
        assert status == "OK" and value is not None
        assert probe.shard in (0, 1)
        take = view.inp(template(ANY, ANY))
        assert take is not None
    finally:
        space.close()


# ----------------------------------------------------------------------
# The Transport contract itself
# ----------------------------------------------------------------------


def test_simulated_network_satisfies_the_protocol():
    assert isinstance(SimulatedNetwork(), Transport)
    assert SimulatedNetwork.virtual_time is True


def test_real_transports_satisfy_the_protocol():
    for transport in (AsyncioLoopbackTransport(), TcpTransport()):
        try:
            assert isinstance(transport, Transport)
            assert transport.virtual_time is False
        finally:
            transport.close()


def test_loopback_delivers_authenticated_messages():
    with AsyncioLoopbackTransport() as net:
        received = []
        net.register("a", lambda sender, payload: None)
        net.register("b", lambda sender, payload: received.append((sender, payload)))
        net.send("a", "b", ("hello", 1))
        assert net.run_until(lambda: len(received) == 1, timeout=WAIT_MS)
        assert received == [("a", ("hello", 1))]
        assert net.statistics["delivered"] == 1


def test_duplicate_registration_and_unknown_receiver_raise():
    with AsyncioLoopbackTransport() as net:
        net.register("a", lambda s, p: None)
        with pytest.raises(SimulationError):
            net.register("a", lambda s, p: None)
        with pytest.raises(SimulationError):
            net.send("a", "ghost", "payload")


def test_timers_fire_and_cancel():
    with AsyncioLoopbackTransport() as net:
        fired = []
        net.schedule_after(10.0, lambda: fired.append("kept"))
        cancelled = net.schedule_after(10.0, lambda: fired.append("cancelled"))
        cancelled.cancel()
        assert net.run_until(lambda: "kept" in fired, timeout=WAIT_MS)
        time.sleep(0.05)
        assert fired == ["kept"]
        with pytest.raises(SimulationError):
            net.schedule_after(-1.0, lambda: None)


def test_run_until_times_out_to_false():
    with AsyncioLoopbackTransport() as net:
        start = time.monotonic()
        assert net.run_until(lambda: False, timeout=50.0) is False
        assert time.monotonic() - start < 5.0


def test_post_runs_on_the_nodes_reactor():
    with AsyncioLoopbackTransport(reactors=2) as net:
        net.pin("n", 1)
        net.register("n", lambda s, p: None)
        seen = []

        def probe() -> None:
            import asyncio

            seen.append(asyncio.get_running_loop())

        net.post("n", probe)
        assert net.run_until(lambda: seen, timeout=WAIT_MS)
        assert seen[0] is net.reactor_of("n").loop


def test_handler_exceptions_do_not_kill_the_reactor():
    with AsyncioLoopbackTransport() as net:
        def explode(sender, payload):
            raise RuntimeError("boom")

        arrived = []
        net.register("bad", explode)
        net.register("ok", lambda s, p: arrived.append(p))
        net.register("src", lambda s, p: None)
        net.send("src", "bad", 1)
        net.send("src", "ok", 2)
        assert net.run_until(lambda: arrived, timeout=WAIT_MS)
        assert net.statistics["handler_errors"] == 1
        assert isinstance(net.last_handler_error, RuntimeError)


def test_forged_tcp_frame_is_rejected_before_the_handler():
    """An attacker with a raw socket but no keys cannot inject messages."""
    with TcpTransport() as net:
        received = []
        net.register("victim", lambda s, p: received.append(p))
        net.register("peer", lambda s, p: None)
        host, port = net.address_of("victim")
        payload_bytes = codec.encode_payload(("evil", 666))
        frame = codec.encode_frame("peer", "victim", payload_bytes, mac="00" * 32)
        with socket.create_connection((host, port)) as sock:
            sock.sendall(frame)
            time.sleep(0.2)
        assert received == []
        assert net.statistics["rejected"] >= 1
        # A genuine send still goes through afterwards.
        net.send("peer", "victim", ("legit", 1))
        assert net.run_until(lambda: received, timeout=WAIT_MS)
        assert received == [("legit", 1)]


def test_oversized_tcp_frame_is_cut_off():
    with TcpTransport() as net:
        received = []
        net.register("victim", lambda s, p: received.append(p))
        host, port = net.address_of("victim")
        with socket.create_connection((host, port)) as sock:
            sock.sendall(struct.pack(codec.FRAME_HEADER, codec.MAX_FRAME_BYTES + 1))
            sock.sendall(b"x" * 64)
            time.sleep(0.2)
        assert received == []
        assert net.statistics["rejected"] >= 1


def test_close_is_idempotent_and_quiesces_sends():
    net = AsyncioLoopbackTransport()
    net.register("a", lambda s, p: None)
    net.register("b", lambda s, p: None)
    net.close()
    net.close()
    net.send("a", "b", "after-close")  # silently quiesced, never raises
    with pytest.raises(SimulationError):
        net.register("c", lambda s, p: None)


def test_connect_failure_does_not_leak_reactor_threads():
    import threading

    from repro.errors import ReplicationError, TupleSpaceError
    from repro.replication.network import NetworkConfig

    before = threading.active_count()
    # Conflicting options are rejected before any transport is built …
    with pytest.raises(TupleSpaceError):
        connect(
            "replicated",
            policy=open_policy(),
            transport="asyncio",
            network_config=NetworkConfig(),
        )
    # … and a deployment constructor failing closes the built transport.
    with pytest.raises(ReplicationError):
        connect("replicated", policy=open_policy(), f=-1, transport="asyncio")
    assert threading.active_count() == before


def test_future_bridge_waits_across_threads():
    space = build_space("replicated", "asyncio")
    try:
        future = space.bind("alice").submit_out(entry("JOB", 1))
        assert future.wait(WAIT_MS / 1000.0)
        status, _ = future.result()
        assert status == "OK"
        assert future.latency is not None and future.latency >= 0.0
    finally:
        space.close()


def test_time_unit_reflects_the_transport():
    sim_space = build_space("replicated", None)
    assert sim_space.time_unit == "simulated ms"
    real_space = build_space("replicated", "asyncio")
    try:
        assert real_space.time_unit == "wall-clock ms"
    finally:
        real_space.close()


class _CheckTimeoutsSpy(RealTransport):
    """Loopback variant recording post() targets (nudge marshalling)."""

    def __init__(self) -> None:
        super().__init__(reactors=1, name="spy")
        self.posted = []

    def _dispatch(self, sender, receiver, payload, mac):
        self.reactor_of(receiver).call_soon(
            lambda: self._handle_delivery(sender, receiver, payload, mac)
        )

    def post(self, node, callback) -> None:
        self.posted.append(node)
        super().post(node, callback)


def test_view_change_nudges_are_marshalled_through_post():
    from repro.replication.service import ReplicatedPEATS

    net = _CheckTimeoutsSpy()
    try:
        service = ReplicatedPEATS(open_policy(), f=1, network=net)
        service.check_timeouts()
        assert net.run_until(lambda: len(net.posted) == 4, timeout=WAIT_MS)
        assert set(net.posted) == set(service.replica_ids)
    finally:
        net.close()
