"""Tests for ACLs, sticky bits and registers (the prior model's objects)."""

import pytest

from repro.baselines import ACL, SharedRegister, StickyBit
from repro.peo.base import DeniedResult
from repro.tspace.history import HistoryRecorder


class TestACL:
    def test_allows_membership_and_open_operations(self):
        acl = ACL({"read": None, "set": {"p1", "p2"}})
        assert acl.allows("read", "anyone")
        assert acl.allows("set", "p1")
        assert not acl.allows("set", "p9")

    def test_unlisted_operation_denied(self):
        acl = ACL({"read": None})
        assert not acl.allows("write", "p1")

    def test_allowed_processes_accessor(self):
        acl = ACL({"set": {"p1"}})
        assert acl.allowed_processes("set") == frozenset({"p1"})
        assert acl.allowed_processes("read") is None
        assert acl.operations() == ("set",)

    def test_compiles_to_equivalent_policy(self):
        acl = ACL({"read": None, "set": {"p1"}})
        policy = acl.to_policy(name="bit")
        from repro.policy.invocation import Invocation

        assert policy.evaluate(Invocation("x", "read"), None)[0]
        assert policy.evaluate(Invocation("p1", "set", (1,)), None)[0]
        assert not policy.evaluate(Invocation("x", "set", (1,)), None)[0]
        assert not policy.evaluate(Invocation("p1", "delete"), None)[0]


class TestStickyBit:
    def test_write_once_semantics(self):
        bit = StickyBit(writers={"p1", "p2"})
        assert bit.read(process="anyone") is None
        assert bit.set(1, process="p1") is True
        assert bit.set(0, process="p2") is False
        assert bit.read(process="anyone") == 1
        assert bit.is_set

    def test_acl_enforced_on_set(self):
        bit = StickyBit(writers={"p1"})
        result = bit.set(1, process="intruder")
        assert isinstance(result, DeniedResult)
        assert bit.value is None

    def test_open_writers_when_unrestricted(self):
        bit = StickyBit()
        assert bit.set(0, process="anyone") is True

    def test_rejects_non_binary_values(self):
        bit = StickyBit()
        with pytest.raises(ValueError):
            bit.set(7, process="p1")

    def test_history(self):
        history = HistoryRecorder()
        bit = StickyBit(writers={"p1"}, history=history)
        bit.set(1, process="p1")
        bit.set(0, process="bad")
        assert history.denied_count() == 1


class TestSharedRegister:
    def test_read_write(self):
        register = SharedRegister(initial=0, writers={"p1"})
        assert register.read(process="x") == 0
        assert register.write(9, process="p1") is True
        assert register.read(process="x") == 9

    def test_register_is_resettable_unlike_sticky_bit(self):
        # This is the property that makes registers useless for Byzantine
        # consensus (Attie [10]) and sticky bits/PEATS necessary.
        register = SharedRegister(initial=0, writers=None)
        register.write(5, process="a")
        register.write(0, process="b")
        assert register.read(process="c") == 0

    def test_acl_on_writes(self):
        register = SharedRegister(initial=0, writers={"p1"})
        assert not register.write(1, process="intruder")
        assert register.value == 0
