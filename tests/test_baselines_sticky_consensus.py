"""Tests for the sticky-bit strong consensus baseline."""

import pytest

from repro.baselines import StickyBitStrongConsensus
from repro.consensus import run_consensus
from repro.consensus.base import check_agreement, check_strong_validity
from repro.errors import ResilienceError
from repro.model.scheduler import random_schedule


class TestConstruction:
    def test_requires_t_plus_1_times_2t_plus_1_processes(self):
        with pytest.raises(ResilienceError):
            StickyBitStrongConsensus(range(5), 1)  # needs (2)(3) = 6
        StickyBitStrongConsensus(range(6), 1)

    def test_resource_profile(self):
        consensus = StickyBitStrongConsensus(range(15), 2)
        assert consensus.bit_count == 5
        assert consensus.memory_bits() == 5
        assert consensus.required_processes() == 15
        assert len(consensus.bits) == 5

    def test_groups_partition_processes(self):
        consensus = StickyBitStrongConsensus(range(6), 1)
        groups = {consensus.group_of(p) for p in range(6)}
        assert groups == {0, 1, 2}

    def test_binary_only(self):
        consensus = StickyBitStrongConsensus(range(6), 1)
        with pytest.raises(ValueError):
            consensus.propose(0, "blue", max_iterations=5)


class TestDecisions:
    def test_unanimous(self):
        consensus = StickyBitStrongConsensus(range(6), 1)
        run = run_consensus(consensus, {p: 1 for p in range(6)})
        assert run.terminated and run.decision() == 1

    def test_mixed_inputs_satisfy_strong_validity(self):
        consensus = StickyBitStrongConsensus(range(6), 1)
        proposals = {p: p % 2 for p in range(6)}
        run = run_consensus(consensus, proposals)
        assert run.terminated
        assert check_agreement(run.outcomes.values())
        assert check_strong_validity(run.outcomes.values(), proposals.values())

    def test_byzantine_group_member_cannot_flip_unanimous_decision(self):
        # The Byzantine process (5) races to stick its group's bit with 0
        # while every correct process proposes 1.  At most t = 1 bits can be
        # polluted, so the majority over 2t + 1 = 3 bits is still 1.
        consensus = StickyBitStrongConsensus(range(6), 1)

        def byzantine(consensus_object, process):
            consensus_object.bits[consensus_object.group_of(process)].set(0, process=process)
            return
            yield  # pragma: no cover

        proposals = {p: 1 for p in range(5)}
        run = run_consensus(consensus, proposals, byzantine={5: byzantine})
        assert run.terminated
        assert run.decision() == 1

    def test_silent_byzantine_processes_do_not_block(self):
        # Every group has at least one correct member, so all bits get set.
        consensus = StickyBitStrongConsensus(range(6), 1)
        proposals = {p: 1 for p in range(5)}  # process 5 silent
        run = run_consensus(consensus, proposals, max_rounds=500)
        assert run.terminated

    def test_decision_view(self):
        consensus = StickyBitStrongConsensus(range(6), 1)
        assert consensus.decision() is None
        run_consensus(consensus, {p: 0 for p in range(6)})
        assert consensus.decision() == 0

    def test_reproducible_under_random_schedules(self):
        for seed in (1, 2, 3):
            consensus = StickyBitStrongConsensus(range(15), 2)
            proposals = {p: p % 2 for p in range(13)}
            run = run_consensus(
                consensus, proposals, schedule=random_schedule(seed), max_rounds=2000
            )
            assert run.terminated
            assert check_agreement(run.outcomes.values())
