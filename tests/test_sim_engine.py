"""Tests for the scenario engine core: timers, async client path, runner loop."""

import pytest

from repro.errors import OperationTimeoutError, QuorumError, SimulationError
from repro.replication import NetworkConfig, ReplicatedPEATS, SimulatedNetwork
from repro.replication.pbft import ReplicaFaultMode
from repro.sim import (
    Op,
    Pause,
    Scenario,
    ScenarioEngine,
    SimMetrics,
    ok_value,
    op_in,
    op_out,
    op_rd,
    op_rdp,
    open_sim_policy,
    run_scenario,
)
from repro.tuples import ANY, entry, template


class TestNetworkTimers:
    def test_timer_fires_at_its_virtual_time(self):
        network = SimulatedNetwork(NetworkConfig(seed=1))
        fired = []
        network.schedule_at(25.0, lambda: fired.append(network.now))
        network.run()
        assert fired == [25.0]
        assert network.now == 25.0

    def test_timers_and_messages_interleave_in_time_order(self):
        network = SimulatedNetwork(NetworkConfig(mean_latency=5.0, jitter=0.0, seed=1))
        order = []
        network.register("n", lambda sender, payload: order.append(("msg", payload)))
        network.schedule_at(1.0, lambda: order.append(("timer", 1.0)))
        network.send("m", "n", "hello")  # delivered at t=5
        network.schedule_at(9.0, lambda: order.append(("timer", 9.0)))
        network.run()
        assert order == [("timer", 1.0), ("msg", "hello"), ("timer", 9.0)]

    def test_cancelled_timer_does_not_fire(self):
        network = SimulatedNetwork(NetworkConfig(seed=1))
        fired = []
        timer = network.schedule_after(5.0, lambda: fired.append("boom"))
        timer.cancel()
        network.run()
        assert fired == []

    def test_run_until_time_stops_exactly_at_deadline(self):
        network = SimulatedNetwork(NetworkConfig(seed=1))
        fired = []
        network.schedule_at(10.0, lambda: fired.append(10.0))
        network.schedule_at(30.0, lambda: fired.append(30.0))
        network.run_until_time(20.0)
        assert fired == [10.0]
        assert network.now == 20.0
        network.run()
        assert fired == [10.0, 30.0]

    def test_negative_delay_rejected(self):
        network = SimulatedNetwork(NetworkConfig(seed=1))
        with pytest.raises(SimulationError):
            network.schedule_after(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            network.run_for(-5.0)


class TestPendingRequests:
    def test_submit_completes_via_callback_without_blocking(self):
        service = ReplicatedPEATS(open_sim_policy(), f=1)
        client = service.client("c1")
        seen = []
        pending = client.submit("out", (entry("A", 1),), on_complete=lambda p: seen.append(p))
        assert not pending.done
        service.network.run_until(lambda: pending.done)
        assert seen == [pending]
        assert pending.result() == ("OK", True)
        assert pending.latency is not None and pending.latency > 0

    def test_many_requests_in_flight_concurrently(self):
        service = ReplicatedPEATS(open_sim_policy(), f=1)
        clients = [service.client(f"c{i}") for i in range(8)]
        pendings = [c.submit("out", (entry("A", i),)) for i, c in enumerate(clients)]
        assert all(not p.done for p in pendings)
        service.network.run_until(lambda: all(p.done for p in pendings))
        assert all(p.result() == ("OK", True) for p in pendings)
        assert len(service.snapshot()) == 8

    def test_result_raises_while_in_flight(self):
        service = ReplicatedPEATS(open_sim_policy(), f=1)
        pending = service.client("c1").submit("out", (entry("A", 1),))
        with pytest.raises(Exception):
            pending.result()

    def test_request_fails_with_quorum_error_after_max_retransmissions(self):
        service = ReplicatedPEATS(
            open_sim_policy(),
            f=1,
            replica_faults={
                1: ReplicaFaultMode.LYING,
                2: ReplicaFaultMode.LYING,
                3: ReplicaFaultMode.LYING,
            },
        )
        client = service.client("c1")
        client._max_retransmissions = 2
        pending = client.submit("out", (entry("A", 1),))
        service.network.run_until(lambda: pending.done)
        assert isinstance(pending.exception, QuorumError)
        with pytest.raises(QuorumError):
            pending.result()

    def test_synchronous_invoke_still_works_on_top_of_submit(self):
        service = ReplicatedPEATS(open_sim_policy(), f=1)
        client = service.client("c1")
        assert client.invoke("out", (entry("A", 1),)) == ("OK", True)
        assert not client.pending_requests


class TestScenarioEngine:
    def test_programs_interleave_and_finish(self):
        service = ReplicatedPEATS(open_sim_policy(), f=1)
        engine = ScenarioEngine(service)

        def writer(i):
            def program():
                payload = yield op_out(entry("W", i))
                assert ok_value(payload) is True
                payload = yield op_rdp(template("W", ANY))
                return ok_value(payload) is not None

            return program

        for i in range(6):
            engine.add_client(f"w{i}", writer(i)())
        metrics = engine.run()
        assert not engine.unfinished_clients()
        assert not engine.failed_clients()
        assert metrics.operations_completed == 12
        assert len(service.snapshot()) == 6

    def test_pause_suspends_on_the_virtual_clock(self):
        service = ReplicatedPEATS(open_sim_policy(), f=1)
        engine = ScenarioEngine(service)
        times = []

        def program():
            yield op_out(entry("A", 1))
            times.append(service.network.now)
            yield Pause(40.0)
            times.append(service.network.now)
            yield op_out(entry("A", 2))

        engine.add_client("p", program())
        engine.run()
        assert times[1] - times[0] == pytest.approx(40.0)

    def test_blocking_read_steps_resolve_across_clients(self):
        # A program may yield rd/in steps: the engine's unified Space
        # emulates them as probe chains on the virtual clock, so a reader
        # blocks until another client's out lands — no polling loop in
        # the program itself.
        service = ReplicatedPEATS(open_sim_policy(), f=1)
        engine = ScenarioEngine(service)

        def producer():
            yield Pause(60.0)
            yield op_out(entry("HANDOFF", "payload"))
            return "sent"

        def consumer():
            payload = yield op_in(template("HANDOFF", ANY), timeout=500.0)
            return ok_value(payload)

        engine.add_client("producer", producer())
        consumer_runner = engine.add_client("consumer", consumer())
        engine.run()
        assert not engine.unfinished_clients()
        assert consumer_runner.result == entry("HANDOFF", "payload")
        assert len(service.snapshot()) == 0

    def test_blocking_read_step_timeout_fails_only_that_client(self):
        service = ReplicatedPEATS(open_sim_policy(), f=1)
        engine = ScenarioEngine(service)

        def starved():
            yield op_rd(template("NEVER", ANY), timeout=30.0)

        runner = engine.add_client("starved", starved())
        engine.run()
        assert isinstance(runner.failed, OperationTimeoutError)

    def test_bad_yield_value_fails_the_client_not_the_engine(self):
        service = ReplicatedPEATS(open_sim_policy(), f=1)
        engine = ScenarioEngine(service)

        def bad():
            yield "not-a-step"

        def good():
            yield op_out(entry("A", 1))
            return True

        bad_runner = engine.add_client("bad", bad())
        good_runner = engine.add_client("good", good())
        engine.run()
        assert isinstance(bad_runner.failed, SimulationError)
        assert good_runner.failed is None and good_runner.result is True

    def test_deadline_stops_the_run_and_is_recorded(self):
        service = ReplicatedPEATS(open_sim_policy(), f=1)
        engine = ScenarioEngine(service)

        def sleeper():
            yield Pause(10_000.0)
            yield op_out(entry("A", 1))

        engine.add_client("s", sleeper())
        metrics = engine.run(deadline=100.0)
        assert engine.unfinished_clients()
        assert "deadline" in metrics.trace_text()

    def test_engine_runs_exactly_once(self):
        service = ReplicatedPEATS(open_sim_policy(), f=1)
        engine = ScenarioEngine(service)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run()
        with pytest.raises(SimulationError):
            engine.add_client("late", iter(()))

    def test_engine_hook_fires_at_scheduled_time(self):
        service = ReplicatedPEATS(open_sim_policy(), f=1)
        engine = ScenarioEngine(service)
        seen = []

        def waiter():
            yield Pause(50.0)
            return True

        engine.add_client("w", waiter())
        engine.at(20.0, lambda: seen.append(service.network.now), label="probe")
        engine.run()
        assert seen == [20.0]

    def test_unsupported_operation_rejected_at_construction(self):
        with pytest.raises(SimulationError):
            Op("steal", ())


class TestThroughputSeries:
    def test_empty_series(self):
        metrics = SimMetrics(throughput_bucket=100.0)
        assert metrics.throughput_series() == []

    def test_single_bucket(self):
        metrics = SimMetrics(throughput_bucket=100.0)
        for now in (0.0, 10.0, 99.9):
            metrics.record_complete(now, "p", "out", 0, latency=1.0, status="OK")
        assert metrics.throughput_series() == [(0.0, 3)]

    def test_zero_timestamp_lands_in_the_first_bucket(self):
        metrics = SimMetrics(throughput_bucket=50.0)
        metrics.record_complete(0.0, "p", "out", 0, latency=0.0, status="OK")
        metrics.record_complete(50.0, "p", "out", 1, latency=0.0, status="OK")
        assert metrics.throughput_series() == [(0.0, 1), (50.0, 1)]

    def test_negative_timestamp_rejected(self):
        metrics = SimMetrics(throughput_bucket=100.0)
        with pytest.raises(ValueError):
            metrics.record_complete(-0.5, "p", "out", 0, latency=1.0, status="OK")
        assert metrics.throughput_series() == []

    def test_sparse_buckets_only_report_nonempty_windows(self):
        metrics = SimMetrics(throughput_bucket=10.0)
        metrics.record_complete(5.0, "p", "out", 0, latency=1.0, status="OK")
        metrics.record_complete(35.0, "p", "out", 1, latency=1.0, status="OK")
        assert metrics.throughput_series() == [(0.0, 1), (30.0, 1)]


class TestScenarioFacade:
    def test_run_scenario_builds_a_fresh_deployment(self):
        def program():
            yield op_out(entry("A", 1))
            return "ok"

        scenario = Scenario(name="one", clients=[("p", program)])
        result = run_scenario(scenario)
        assert result.completed
        assert result.client_results() == {"p": "ok"}
        assert result.metrics.operations_completed == 1
        assert len(result.service.snapshot()) == 1

    def test_external_metrics_instance_is_used(self):
        def program():
            yield op_out(entry("A", 1))

        metrics = SimMetrics(throughput_bucket=10.0)
        result = run_scenario(Scenario(name="m", clients=[("p", program)]), metrics=metrics)
        assert result.metrics is metrics
        assert metrics.throughput_series()
