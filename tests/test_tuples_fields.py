"""Unit tests for wildcard and formal fields."""

import pickle

import pytest

from repro.tuples import ANY, Formal, Wildcard, is_defined


class TestWildcard:
    def test_singleton_identity(self):
        assert Wildcard() is ANY

    def test_equality(self):
        assert Wildcard() == ANY
        assert ANY != "ANY"

    def test_hashable_and_stable(self):
        assert hash(ANY) == hash(Wildcard())

    def test_repr(self):
        assert repr(ANY) == "ANY"

    def test_pickle_preserves_singleton(self):
        assert pickle.loads(pickle.dumps(ANY)) is ANY

    def test_is_not_defined(self):
        assert not is_defined(ANY)


class TestFormal:
    def test_requires_nonempty_name(self):
        with pytest.raises(ValueError):
            Formal("")

    def test_requires_string_name(self):
        with pytest.raises(ValueError):
            Formal(3)  # type: ignore[arg-type]

    def test_equality_on_name_and_type(self):
        assert Formal("v") == Formal("v")
        assert Formal("v", int) == Formal("v", int)
        assert Formal("v") != Formal("w")
        assert Formal("v", int) != Formal("v", str)

    def test_hash_consistent_with_equality(self):
        assert hash(Formal("v", int)) == hash(Formal("v", int))

    def test_accepts_any_value_without_type(self):
        formal = Formal("v")
        assert formal.accepts(1)
        assert formal.accepts("x")
        assert formal.accepts(None)

    def test_accepts_respects_type(self):
        formal = Formal("v", int)
        assert formal.accepts(5)
        assert not formal.accepts("5")

    def test_int_formal_rejects_bool(self):
        assert not Formal("v", int).accepts(True)

    def test_bool_formal_accepts_bool(self):
        assert Formal("v", bool).accepts(True)

    def test_repr_with_and_without_type(self):
        assert repr(Formal("v")) == "?v"
        assert repr(Formal("v", int)) == "?v:int"

    def test_is_not_defined(self):
        assert not is_defined(Formal("v"))


class TestIsDefined:
    @pytest.mark.parametrize("value", [0, 1, "DECISION", None, 3.5, frozenset({1}), (1, 2)])
    def test_concrete_values_are_defined(self, value):
        assert is_defined(value)

    @pytest.mark.parametrize("value", [ANY, Formal("x"), Formal("y", str)])
    def test_pattern_fields_are_not_defined(self, value):
        assert not is_defined(value)
