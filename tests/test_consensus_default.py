"""Tests for the default multivalued consensus (Section 5.4)."""

import pytest

from repro.consensus import DefaultConsensus, run_consensus
from repro.consensus.base import check_agreement, check_default_strong_validity
from repro.errors import ResilienceError
from repro.model.faults import bottom_forcing_byzantine, silent_byzantine
from repro.policy.library import BOTTOM


class TestConstruction:
    def test_resilience_is_3t_plus_1(self):
        with pytest.raises(ResilienceError):
            DefaultConsensus(range(3), 1)
        DefaultConsensus(range(4), 1)

    def test_bottom_cannot_be_proposed(self):
        consensus = DefaultConsensus(range(4), 1)
        with pytest.raises(ValueError):
            consensus.propose(0, BOTTOM, max_iterations=5)

    def test_bottom_property_exposed(self):
        assert DefaultConsensus(range(4), 1).bottom is BOTTOM


class TestDecisions:
    def test_unanimous_value_is_decided(self):
        consensus = DefaultConsensus(range(4), 1)
        proposals = {p: "v" for p in range(4)}
        run = run_consensus(consensus, proposals)
        assert run.terminated
        assert run.decision() == "v"

    def test_majority_value_is_decided_when_supported_by_t_plus_1(self):
        consensus = DefaultConsensus(range(4), 1)
        proposals = {0: "a", 1: "a", 2: "b", 3: "c"}
        run = run_consensus(consensus, proposals)
        assert run.terminated
        assert run.decision() == "a"

    def test_split_values_decide_bottom(self):
        # Multivalued with every process proposing something different: no
        # value reaches t + 1, so the decision is ⊥ — and that is legal
        # because resilience stays at 3t + 1 regardless of |V|.
        consensus = DefaultConsensus(range(4), 1)
        proposals = {0: "a", 1: "b", 2: "c", 3: "d"}
        run = run_consensus(consensus, proposals)
        assert run.terminated
        assert run.decision() == BOTTOM

    def test_agreement_and_default_validity_properties(self):
        consensus = DefaultConsensus(range(7), 2)
        proposals = {p: f"v{p % 3}" for p in range(7)}
        run = run_consensus(consensus, proposals)
        assert run.terminated
        outcomes = list(run.outcomes.values())
        assert check_agreement(outcomes)
        assert check_default_strong_validity(outcomes, proposals, BOTTOM)

    def test_decision_view(self):
        consensus = DefaultConsensus(range(4), 1)
        assert consensus.decision() is None
        run_consensus(consensus, {p: "x" for p in range(4)})
        assert consensus.decision() == "x"


class TestByzantineResistance:
    def test_byzantine_cannot_force_bottom_when_correct_agree(self):
        # Default Strong Validity condition 1: if all correct processes
        # propose v, the decision is v — a Byzantine ⊥-forcer must fail.
        consensus = DefaultConsensus(range(4), 1)
        proposals = {0: "v", 1: "v", 2: "v"}
        run = run_consensus(
            consensus, proposals, byzantine={3: bottom_forcing_byzantine()}
        )
        assert run.terminated
        assert run.decision() == "v"

    def test_silent_byzantine_still_terminates(self):
        consensus = DefaultConsensus(range(4), 1)
        proposals = {0: "v", 1: "v", 2: "w"}
        run = run_consensus(consensus, proposals, byzantine={3: silent_byzantine})
        assert run.terminated
        assert run.decision() in ("v", BOTTOM)
        # "v" has t + 1 = 2 supporters, so ⊥ is only reachable if the
        # decider read the proposals before both v's landed — both results
        # satisfy Default Strong Validity; Agreement is what matters.
        assert check_agreement(run.outcomes.values())

    def test_below_bound_does_not_terminate(self):
        consensus = DefaultConsensus(range(4), 1)
        # Only two correct proposers (n - t requires 3 participants).
        run = run_consensus(consensus, {0: "a", 1: "b"}, max_rounds=50)
        assert not run.terminated


class TestSpaceShape:
    def test_bottom_decision_carries_proof(self):
        consensus = DefaultConsensus(range(4), 1)
        run_consensus(consensus, {0: "a", 1: "b", 2: "c", 3: "d"})
        decision_tuples = [
            stored for stored in consensus.space.snapshot() if stored.fields[0] == "DECISION"
        ]
        assert len(decision_tuples) == 1
        value, proof = decision_tuples[0].fields[1], decision_tuples[0].fields[2]
        assert value == BOTTOM
        covered = set()
        for _, group in proof:
            covered |= set(group)
        assert len(covered) >= len(consensus.processes) - consensus.t
