"""Tests for the local PEATS (policy-enforced augmented tuple space)."""

import threading

import pytest

from repro.errors import AccessDeniedError
from repro.peo import PEATS
from repro.peo.base import DeniedResult
from repro.policy import AccessPolicy, Rule, strong_consensus_policy, weak_consensus_policy
from repro.tspace.history import HistoryRecorder
from repro.tuples import ANY, Formal, entry, template


def open_policy():
    """A permissive policy used to test the plumbing without denials."""
    return AccessPolicy(
        [Rule(name, name) for name in ("out", "rdp", "inp", "rd", "in", "cas")],
        name="open",
    )


class TestPlumbing:
    def test_all_operations_work_under_an_open_policy(self):
        space = PEATS(open_policy())
        assert space.out(entry("A", 1), process="p1") is True
        assert space.rdp(template("A", ANY), process="p1") == entry("A", 1)
        inserted, _ = space.cas(template("B", ANY), entry("B", 2), process="p1")
        assert inserted is True
        assert space.inp(template("B", ANY), process="p1") == entry("B", 2)
        assert space.rd(template("A", ANY), timeout=0.1, process="p1") == entry("A", 1)
        assert space.in_(template("A", ANY), timeout=0.1, process="p1") == entry("A", 1)
        assert len(space) == 0

    def test_initial_entries(self):
        space = PEATS(open_policy(), initial=[entry("A", 1)])
        assert len(space) == 1

    def test_size_bits(self):
        space = PEATS(open_policy(), initial=[entry("A", 3)])
        assert space.size_bits() == 8 + 2

    def test_history_and_monitor(self):
        history = HistoryRecorder()
        space = PEATS(weak_consensus_policy(), history=history)
        space.out(entry("DECISION", 1), process="p1")  # denied by Fig. 3
        space.cas(template("DECISION", Formal("d")), entry("DECISION", 1), process="p1")
        assert history.denied_count() == 1
        assert space.monitor.denied_count == 1
        assert space.monitor.granted_count == 1


class TestDenialSemantics:
    def test_denied_out_returns_falsy_with_reason(self):
        space = PEATS(weak_consensus_policy())
        result = space.out(entry("DECISION", 1), process="p1")
        assert isinstance(result, DeniedResult)
        assert not result
        assert "deny" in result.reason.lower() or "no rule" in result.reason.lower()

    def test_denied_read_returns_none(self):
        space = PEATS(weak_consensus_policy(), initial=[entry("DECISION", 1)])
        assert space.rdp(template("DECISION", ANY), process="p1") is None
        assert space.inp(template("DECISION", ANY), process="p1") is None

    def test_denied_cas_returns_falsy_pair(self):
        space = PEATS(weak_consensus_policy())
        inserted, existing = space.cas(
            template("OTHER", Formal("x")), entry("OTHER", 1), process="p1"
        )
        assert not inserted and existing is None

    def test_denied_blocking_read_raises(self):
        space = PEATS(weak_consensus_policy(), initial=[entry("DECISION", 1)])
        with pytest.raises(AccessDeniedError):
            space.rd(template("DECISION", ANY), timeout=0.1, process="p1")
        with pytest.raises(AccessDeniedError):
            space.in_(template("DECISION", ANY), timeout=0.1, process="p1")

    def test_raise_on_deny_mode(self):
        space = PEATS(weak_consensus_policy(), raise_on_deny=True)
        with pytest.raises(AccessDeniedError):
            space.out(entry("DECISION", 1), process="p1")


class TestAtomicityOfPolicyAndOperation:
    def test_policy_sees_state_at_execution_time(self):
        # Fig. 4 Rout: a second proposal by the same process is denied even
        # when issued concurrently from many threads.
        processes = list(range(4))
        space = PEATS(strong_consensus_policy(processes, 1))
        results = []

        def proposer():
            results.append(bool(space.out(entry("PROPOSE", 0, 1), process=0)))

        threads = [threading.Thread(target=proposer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results.count(True) == 1
        assert len(space.snapshot()) == 1

    def test_single_decision_under_concurrent_cas(self):
        processes = list(range(4))
        space = PEATS(strong_consensus_policy(processes, 1))
        for process in (0, 1, 2):
            space.out(entry("PROPOSE", process, 1), process=process)
        winners = []

        def decider(process):
            inserted, _ = space.cas(
                template("DECISION", Formal("d"), ANY),
                entry("DECISION", 1, frozenset({0, 1})),
                process=process,
            )
            if inserted:
                winners.append(process)

        threads = [threading.Thread(target=decider, args=(p,)) for p in (0, 1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1


class TestProcessBoundPEATS:
    def test_bound_view_carries_identity(self):
        processes = list(range(4))
        space = PEATS(strong_consensus_policy(processes, 1))
        view0 = space.bind(0)
        view1 = space.bind(1)
        assert view0.out(entry("PROPOSE", 0, 1)) is True
        # view1 may not publish a proposal in 0's name.
        assert not view1.out(entry("PROPOSE", 0, 1))
        assert view1.out(entry("PROPOSE", 1, 1)) is True
        assert view0.rdp(template("PROPOSE", 1, Formal("v"))) == entry("PROPOSE", 1, 1)
        assert view0.process == 0
        assert view0.peats is space
        assert len(view0.snapshot()) == 2
