"""Tests for object types, invocations and the emulated-object library."""

import pytest

from repro.universal import ObjectInvocation, ObjectType
from repro.universal.emulated import (
    atomic_register_type,
    counter_type,
    fifo_queue_type,
    kv_store_type,
    stack_type,
    sticky_bit_type,
)
from repro.universal.emulated.kvstore import MISSING
from repro.universal.emulated.queue import EMPTY as QUEUE_EMPTY
from repro.universal.emulated.stack import EMPTY as STACK_EMPTY
from repro.universal.object_type import InvocationFactory


class TestObjectInvocation:
    def test_hashable_and_unique_by_sequence(self):
        a = ObjectInvocation("inc", (), "p1", 0)
        b = ObjectInvocation("inc", (), "p1", 1)
        assert a != b
        assert hash(a) != hash(b) or a != b

    def test_factory_produces_unique_invocations(self):
        factory = InvocationFactory("p1")
        first = factory("write", 1)
        second = factory("write", 1)
        assert first != second
        assert first.invoker == "p1"
        assert first.operation == "write" and first.args == (1,)

    def test_str_rendering(self):
        invocation = ObjectInvocation("put", ("k", 1), "p2", 7)
        assert "put" in str(invocation) and "p2" in str(invocation)


class TestObjectType:
    def test_validate_invocation(self):
        counter = counter_type()
        counter.validate_invocation(ObjectInvocation("read"))
        with pytest.raises(ValueError):
            counter.validate_invocation(ObjectInvocation("explode"))

    def test_run_sequentially_returns_replies(self):
        counter = counter_type()
        invocations = [
            ObjectInvocation("increment", (), "p", 0),
            ObjectInvocation("increment", (5,), "p", 1),
            ObjectInvocation("read", (), "p", 2),
        ]
        state, replies = counter.run_sequentially(invocations)
        assert state == 6
        assert replies == [0, 1, 6]


class TestEmulatedTypes:
    def test_register(self):
        register = atomic_register_type(initial="empty")
        state, replies = register.run_sequentially(
            [
                ObjectInvocation("read", (), "p", 0),
                ObjectInvocation("write", ("x",), "p", 1),
                ObjectInvocation("read", (), "p", 2),
            ]
        )
        assert replies == ["empty", True, "x"]
        with pytest.raises(ValueError):
            register.apply("x", ObjectInvocation("bogus"))

    def test_sticky_bit(self):
        sticky = sticky_bit_type()
        state, replies = sticky.run_sequentially(
            [
                ObjectInvocation("read", (), "p", 0),
                ObjectInvocation("set", (1,), "p", 1),
                ObjectInvocation("set", (0,), "p", 2),
                ObjectInvocation("read", (), "p", 3),
            ]
        )
        assert replies == [None, True, False, 1]
        assert state == 1
        with pytest.raises(ValueError):
            sticky.apply(None, ObjectInvocation("set", (7,)))

    def test_counter_fetch_and_add_and_reset(self):
        counter = counter_type(initial=10)
        state, replies = counter.run_sequentially(
            [
                ObjectInvocation("increment", (), "p", 0),
                ObjectInvocation("reset", (), "p", 1),
                ObjectInvocation("read", (), "p", 2),
            ]
        )
        assert replies == [10, 11, 10]
        with pytest.raises(ValueError):
            counter.apply(0, ObjectInvocation("increment", ("x",)))

    def test_queue_fifo_order(self):
        queue = fifo_queue_type()
        state, replies = queue.run_sequentially(
            [
                ObjectInvocation("dequeue", (), "p", 0),
                ObjectInvocation("enqueue", ("a",), "p", 1),
                ObjectInvocation("enqueue", ("b",), "p", 2),
                ObjectInvocation("peek", (), "p", 3),
                ObjectInvocation("dequeue", (), "p", 4),
                ObjectInvocation("size", (), "p", 5),
            ]
        )
        assert replies == [QUEUE_EMPTY, True, True, "a", "a", 1]
        assert state == ("b",)

    def test_stack_lifo_order(self):
        stack = stack_type()
        state, replies = stack.run_sequentially(
            [
                ObjectInvocation("pop", (), "p", 0),
                ObjectInvocation("push", ("a",), "p", 1),
                ObjectInvocation("push", ("b",), "p", 2),
                ObjectInvocation("top", (), "p", 3),
                ObjectInvocation("pop", (), "p", 4),
                ObjectInvocation("size", (), "p", 5),
            ]
        )
        assert replies == [STACK_EMPTY, True, True, "b", "b", 1]
        assert state == ("a",)

    def test_kv_store(self):
        store = kv_store_type()
        state, replies = store.run_sequentially(
            [
                ObjectInvocation("get", ("k",), "p", 0),
                ObjectInvocation("put", ("k", 1), "p", 1),
                ObjectInvocation("put", ("k", 2), "p", 2),
                ObjectInvocation("get", ("k",), "p", 3),
                ObjectInvocation("keys", (), "p", 4),
                ObjectInvocation("delete", ("k",), "p", 5),
                ObjectInvocation("size", (), "p", 6),
            ]
        )
        assert replies == [MISSING, MISSING, 1, 2, ("k",), 2, 0]
        assert state == frozenset()

    def test_apply_functions_do_not_mutate_input_state(self):
        queue = fifo_queue_type()
        state = ("a",)
        queue.apply(state, ObjectInvocation("enqueue", ("b",)))
        assert state == ("a",)
