"""Unit tests for the plain tuple space (out / rdp / inp / rd / in)."""

import threading

import pytest

from repro.errors import TupleSpaceError
from repro.tspace import TupleSpace
from repro.tuples import ANY, Formal, entry, template


@pytest.fixture
def space():
    return TupleSpace()


class TestOut:
    def test_out_inserts(self, space):
        assert space.out(entry("A", 1)) is True
        assert len(space) == 1

    def test_out_allows_duplicates(self, space):
        space.out(entry("A", 1))
        space.out(entry("A", 1))
        assert len(space) == 2

    def test_out_rejects_non_entries(self, space):
        with pytest.raises(TupleSpaceError):
            space.out(template("A", ANY))

    def test_initial_population(self):
        prefilled = TupleSpace([entry("A", 1), entry("B", 2)])
        assert len(prefilled) == 2


class TestRdp:
    def test_rdp_returns_matching_entry(self, space):
        space.out(entry("A", 1))
        assert space.rdp(template("A", Formal("v"))) == entry("A", 1)

    def test_rdp_returns_none_without_match(self, space):
        space.out(entry("A", 1))
        assert space.rdp(template("B", ANY)) is None

    def test_rdp_does_not_remove(self, space):
        space.out(entry("A", 1))
        space.rdp(template("A", ANY))
        assert len(space) == 1

    def test_rdp_oldest_first_is_deterministic(self, space):
        space.out(entry("A", 1))
        space.out(entry("A", 2))
        assert space.rdp(template("A", Formal("v"))) == entry("A", 1)

    def test_rdp_with_wildcard_first_field(self, space):
        space.out(entry("A", 1))
        space.out(entry("B", 2))
        assert space.rdp(template(ANY, 2)) == entry("B", 2)

    def test_rdp_rejects_non_templates(self, space):
        with pytest.raises(TupleSpaceError):
            space.rdp("not a template")


class TestInp:
    def test_inp_removes_and_returns(self, space):
        space.out(entry("A", 1))
        assert space.inp(template("A", ANY)) == entry("A", 1)
        assert len(space) == 0

    def test_inp_returns_none_without_match(self, space):
        assert space.inp(template("A", ANY)) is None

    def test_inp_removes_only_one_duplicate(self, space):
        space.out(entry("A", 1))
        space.out(entry("A", 1))
        space.inp(template("A", 1))
        assert len(space) == 1

    def test_index_is_cleaned_after_removal(self, space):
        space.out(entry("A", 1))
        space.inp(template("A", 1))
        space.out(entry("A", 2))
        assert space.rdp(template("A", Formal("v"))) == entry("A", 2)


class TestBlockingReads:
    def test_rd_returns_immediately_when_present(self, space):
        space.out(entry("A", 1))
        assert space.rd(template("A", ANY), timeout=0.1) == entry("A", 1)

    def test_rd_times_out(self, space):
        with pytest.raises(TimeoutError):
            space.rd(template("A", ANY), timeout=0.05)

    def test_in_removes(self, space):
        space.out(entry("A", 1))
        assert space.in_(template("A", ANY), timeout=0.1) == entry("A", 1)
        assert len(space) == 0

    def test_rd_wakes_up_on_insertion_from_another_thread(self, space):
        result = {}

        def writer():
            space.out(entry("A", 99))

        def reader():
            result["value"] = space.rd(template("A", Formal("v")), timeout=2.0)

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        reader_thread.join(timeout=5)
        writer_thread.join(timeout=5)
        assert result["value"] == entry("A", 99)


class TestIntrospection:
    def test_snapshot_preserves_insertion_order(self, space):
        space.out(entry("A", 1))
        space.out(entry("B", 2))
        assert space.snapshot() == (entry("A", 1), entry("B", 2))

    def test_count(self, space):
        space.out(entry("A", 1))
        space.out(entry("A", 2))
        space.out(entry("B", 3))
        assert space.count(template("A", ANY)) == 2

    def test_contains_entry_and_template(self, space):
        space.out(entry("A", 1))
        assert entry("A", 1) in space
        assert template("A", ANY) in space
        assert entry("B", 1) not in space
        assert "garbage" not in space

    def test_clear(self, space):
        space.out(entry("A", 1))
        space.clear()
        assert len(space) == 0

    def test_cas_not_available_on_plain_space(self, space):
        with pytest.raises(TupleSpaceError):
            space.cas(template("A", ANY), entry("A", 1))


class TestEntryAsTemplateNormalization:
    """Regression tests for the single `_as_template` normalization point."""

    def test_rdp_accepts_an_entry_as_template(self, space):
        space.out(entry("A", 1))
        space.out(entry("A", 2))
        assert space.rdp(entry("A", 2)) == entry("A", 2)
        assert space.rdp(entry("A", 3)) is None

    def test_inp_accepts_an_entry_as_template(self, space):
        space.out(entry("A", 1))
        assert space.inp(entry("A", 1)) == entry("A", 1)
        assert space.inp(entry("A", 1)) is None

    def test_entry_template_uses_the_name_index(self, space):
        # An entry's first field is always defined, so the lookup must go
        # through the name index; seed unrelated names to prove no cross-talk.
        for i in range(5):
            space.out(entry(f"N{i}", i))
        space.out(entry("A", 7))
        assert space.rdp(entry("A", 7)) == entry("A", 7)

    def test_reads_reject_non_tuple_patterns(self, space):
        with pytest.raises(TupleSpaceError):
            space.rdp("A")
        with pytest.raises(TupleSpaceError):
            space.inp(("A", 1))

    def test_len_is_live(self, space):
        assert len(space) == 0
        space.out(entry("A", 1))
        space.out(entry("A", 1))
        assert len(space) == 2
        space.inp(template("A", ANY))
        assert len(space) == 1
