"""Post-mortem doctor: dump merging, timeline ordering, diagnosis rules
and the CLI surface (text and JSON, file output, exit codes)."""

from __future__ import annotations

import json

import pytest

from repro.obs import FlightRecorder
from repro.obs.doctor import (
    build_timeline,
    diagnose,
    load_dump,
    main,
    merge_dumps,
    render_text,
    timeline_for_key,
)


def _vote(node, t, sequence, digest, voter, seq):
    return {
        "kind": "checkpoint-vote", "t": t, "sequence": sequence,
        "digest": digest, "voter": voter, "seq": seq, "node": node,
    }


def _node_dump(node, events, *, recorded=None, dropped=0):
    return {
        "node": node,
        "capacity": 512,
        "recorded": recorded if recorded is not None else len(events),
        "dropped": dropped,
        "events": events,
    }


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------


class TestMerge:
    def test_overlapping_dumps_of_one_node_deduplicate_by_seq(self):
        first = _node_dump(
            "r0",
            [{"kind": "execute", "t": 1.0, "seq": 0}, {"kind": "execute", "t": 2.0, "seq": 1}],
        )
        second = _node_dump(
            "r0",
            [{"kind": "execute", "t": 2.0, "seq": 1}, {"kind": "execute", "t": 3.0, "seq": 2}],
            recorded=3,
        )
        merged = merge_dumps([first, second])
        assert [event["seq"] for event in merged["r0"]["events"]] == [0, 1, 2]
        assert merged["r0"]["recorded"] == 3

    def test_full_and_single_node_shapes_both_merge(self):
        recorder = FlightRecorder()
        recorder.record("execute", "a", 1.0, sequence=1)
        recorder.record("execute", "b", 2.0, sequence=2)
        merged = merge_dumps([recorder.dump(), recorder.dump_node("a")])
        assert sorted(merged) == ["a", "b"]
        assert len(merged["a"]["events"]) == 1

    def test_partial_dumps_keep_max_drop_accounting(self):
        lossy = _node_dump("r0", [], recorded=900, dropped=400)
        fresh = _node_dump("r0", [{"kind": "execute", "t": 1.0, "seq": 899}])
        merged = merge_dumps([fresh, lossy])
        assert merged["r0"]["dropped"] == 400
        assert merged["r0"]["recorded"] == 900

    def test_timeline_orders_by_time_then_node_then_seq(self):
        merged = merge_dumps([
            _node_dump("b", [{"kind": "execute", "t": 1.0, "seq": 0}]),
            _node_dump("a", [{"kind": "execute", "t": 1.0, "seq": 0},
                             {"kind": "reply", "t": 0.5, "seq": 1}]),
        ])
        timeline = build_timeline(merged)
        assert [(e["t"], e["node"]) for e in timeline] == [
            (0.5, "a"), (1.0, "a"), (1.0, "b"),
        ]

    def test_timeline_for_key_matches_tuple_and_list_spellings(self):
        merged = merge_dumps([
            _node_dump("c", [{"kind": "submit", "t": 0.0, "seq": 0, "key": ["c", 0]}]),
            _node_dump("r", [{"kind": "execute", "t": 1.0, "seq": 0, "key": ["c", 0]},
                             {"kind": "execute", "t": 2.0, "seq": 1, "key": ["c", 1]}]),
        ])
        span = timeline_for_key(build_timeline(merged), ("c", 0))
        assert [event["kind"] for event in span] == ["submit", "execute"]


# ----------------------------------------------------------------------
# Diagnosis
# ----------------------------------------------------------------------


class TestDiagnose:
    def test_divergent_votes_are_attributed_with_quorum_math(self):
        x, y = "aaaa" * 16, "bbbb" * 16
        events = [
            _vote("r0", 1.0, 8, x, "r0", 0), _vote("r0", 1.1, 8, x, "r2", 1),
            _vote("r0", 1.2, 8, y, "r1", 2), _vote("r0", 1.3, 8, y, "r3", 3),
        ]
        merged = merge_dumps([_node_dump("r0", events)])
        diagnosis = diagnose(merged)
        (finding,) = [
            f for f in diagnosis["findings"] if f["kind"] == "checkpoint-divergence"
        ]
        assert finding["level"] == "critical"
        assert finding["data"]["sequence"] == 8
        assert finding["data"]["quorum"] == 3
        assert finding["data"]["votes_by_digest"] == {
            "aaaa" * 3: ["r0", "r2"], "bbbb" * 3: ["r1", "r3"],
        }
        assert "replicas r1, r3" in finding["detail"]

    def test_certified_checkpoints_are_not_findings(self):
        x = "aaaa" * 16
        events = [
            _vote("r0", 1.0, 8, x, "r0", 0), _vote("r0", 1.1, 8, x, "r1", 1),
            _vote("r0", 1.2, 8, x, "r2", 2),
            {"kind": "checkpoint-cert", "t": 1.3, "sequence": 8, "seq": 3},
        ]
        merged = merge_dumps([_node_dump("r0", events)])
        kinds = [f["kind"] for f in diagnose(merged)["findings"]]
        assert "checkpoint-divergence" not in kinds
        assert "checkpoint-starvation" not in kinds

    def test_subquorum_votes_without_divergence_report_starvation(self):
        x = "aaaa" * 16
        events = [_vote("r0", 1.0, 8, x, "r0", 0), _vote("r0", 1.1, 8, x, "r1", 1)]
        # r2/r3 executed but their votes never arrived (crashed or cut off):
        # they still count toward n because they recorded replica-side events.
        merged = merge_dumps([
            _node_dump("r0", events),
            _node_dump("r2", [{"kind": "execute", "t": 0.5, "seq": 0, "sequence": 4}]),
            _node_dump("r3", [{"kind": "execute", "t": 0.5, "seq": 0, "sequence": 4}]),
        ])
        (finding,) = [
            f for f in diagnose(merged)["findings"]
            if f["kind"] == "checkpoint-starvation"
        ]
        assert finding["level"] == "warn"
        assert finding["data"]["votes"] == 2

    def test_quorum_failures_and_drops_and_truncation_are_reported(self):
        events = [
            {"kind": "quorum-failure", "t": 5.0, "seq": 0, "key": ["c", 0], "attempts": 4},
            {"kind": "msg-drop", "t": 1.0, "seq": 1, "reason": "lossy-link"},
            {"kind": "msg-drop", "t": 2.0, "seq": 2, "reason": "partitioned"},
        ]
        merged = merge_dumps([_node_dump("c", events, recorded=40, dropped=7)])
        findings = {f["kind"]: f for f in diagnose(merged)["findings"]}
        assert findings["quorum-failure"]["level"] == "critical"
        assert findings["message-loss"]["data"]["by_reason"] == {
            "lossy-link": 1, "partitioned": 1,
        }
        assert findings["recording-truncated"]["data"]["dropped"] == {"c": 7}

    def test_health_reports_are_cross_referenced(self):
        merged = merge_dumps([_node_dump("r0", [])])
        health = [{
            "probe": "checkpoint-starvation", "level": "critical",
            "subject": "group", "detail": "lag 16", "data": {"lag": 16},
        }]
        (finding,) = diagnose(merged, health=health)["findings"]
        assert finding["kind"] == "health:checkpoint-starvation"
        assert finding["level"] == "critical"
        assert "online probe" in finding["detail"]

    def test_findings_sort_critical_first(self):
        x, y = "a" * 64, "b" * 64
        events = [
            {"kind": "msg-drop", "t": 0.5, "seq": 0, "reason": "lossy-link"},
            _vote("r0", 1.0, 8, x, "r0", 1), _vote("r0", 1.1, 8, y, "r1", 2),
        ]
        merged = merge_dumps([_node_dump("r0", events)])
        levels = [f["level"] for f in diagnose(merged)["findings"]]
        assert levels == sorted(levels, key=("critical", "warn", "info").index)

    def test_healthy_recordings_produce_no_findings(self):
        events = [
            {"kind": "execute", "t": 1.0, "seq": 0, "sequence": 1},
            {"kind": "reply", "t": 1.1, "seq": 1},
        ]
        diagnosis = diagnose(merge_dumps([_node_dump("r0", events)]))
        assert diagnosis["findings"] == []
        assert diagnosis["events"] == 2
        assert "no findings" in render_text(diagnosis)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCli:
    @pytest.fixture()
    def wedge_dump(self, tmp_path):
        x, y = "aaaa" * 16, "bbbb" * 16
        events = [
            _vote("r0", 1.0, 8, x, "r0", 0), _vote("r0", 1.1, 8, x, "r2", 1),
            _vote("r0", 1.2, 8, y, "r1", 2), _vote("r0", 1.3, 8, y, "r3", 3),
        ]
        path = tmp_path / "dump.json"
        path.write_text(json.dumps(_node_dump("r0", events)))
        return path

    def test_text_output_names_the_wedge(self, wedge_dump, capsys):
        assert main([str(wedge_dump)]) == 0
        out = capsys.readouterr().out
        assert "[CRIT] checkpoint-divergence" in out
        assert "replicas r1, r3" in out

    def test_json_output_to_file_and_fail_on_critical(self, wedge_dump, tmp_path):
        report = tmp_path / "diag.json"
        code = main([
            str(wedge_dump), "--format", "json",
            "--output", str(report), "--fail-on-critical",
        ])
        assert code == 1
        diagnosis = json.loads(report.read_text())
        kinds = [f["kind"] for f in diagnosis["findings"]]
        assert "checkpoint-divergence" in kinds

    def test_health_snapshot_is_merged_into_findings(self, wedge_dump, tmp_path, capsys):
        health = tmp_path / "health.json"
        health.write_text(json.dumps([{
            "probe": "view-churn", "level": "warn",
            "subject": "group", "detail": "churny", "data": {},
        }]))
        assert main([str(wedge_dump), "--health", str(health)]) == 0
        assert "health:view-churn" in capsys.readouterr().out

    def test_load_dump_round_trips_recorder_output(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record("execute", "r0", 1.0, sequence=1)
        path = tmp_path / "d.json"
        path.write_text(json.dumps(recorder.dump()))
        merged = merge_dumps([load_dump(path)])
        assert merged["r0"]["events"][0]["kind"] == "execute"
