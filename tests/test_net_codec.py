"""The wire codec must round-trip every protocol payload *exactly*.

Exactness here is stronger than ``==``: the ordering protocol digests
payloads with the pickle-based :func:`repro.replication.crypto.digest`,
and the client MAC vector is verified by replicas over the *decoded*
request, so the decoded graph must produce the same digest/MAC as the
original.  These tests pin both properties for every message class and
every tuple-space value kind, plus the frame layer's safety rails
(unknown classes, malformed envelopes, oversized frames).
"""

from __future__ import annotations

import struct

import pytest

from repro.net import codec
from repro.replication.crypto import KeyStore, MessageAuthenticator, digest
from repro.replication.messages import (
    Batch,
    Checkpoint,
    ClientReply,
    ClientRequest,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    StateRequest,
    StateResponse,
    ViewChange,
    authenticate_request,
    null_batch,
    request_auth_payload,
)
from repro.tuples import ANY, Entry, Formal, Template, entry, template


def roundtrip(value):
    return codec.decode(codec.encode(value))


# ----------------------------------------------------------------------
# Plain data and tuple-space values
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -17,
        3.5,
        "text",
        b"\x00\xffbytes",
        (1, "two", None),
        [1, [2, (3,)]],
        {"a": 1, "b": (2, 3)},
        {1: "int-key", (2, 3): "tuple-key"},
        (),
        [],
        {},
    ],
)
def test_plain_data_roundtrips_with_types(value):
    decoded = roundtrip(value)
    assert decoded == value
    assert type(decoded) is type(value)


def test_container_types_distinguished():
    assert roundtrip((1, 2)) == (1, 2) and isinstance(roundtrip((1, 2)), tuple)
    assert roundtrip([1, 2]) == [1, 2] and isinstance(roundtrip([1, 2]), list)


def test_dict_insertion_order_preserved():
    ordered = {"z": 1, "a": 2, "m": 3}
    assert list(roundtrip(ordered)) == ["z", "a", "m"]


@pytest.mark.parametrize(
    "value",
    [
        entry("LOCK", "free"),
        entry("N", 1, 2.5, "x"),
        template("LOCK", ANY),
        template(ANY, Formal("v")),
        template("T", Formal("n", int), Formal("s", str)),
    ],
)
def test_tuple_space_values_roundtrip(value):
    decoded = roundtrip(value)
    assert decoded == value
    assert type(decoded) is type(value)
    assert digest(decoded) == digest(value)


def test_wildcard_stays_singleton():
    decoded = roundtrip(template(ANY, ANY))
    assert decoded.fields[0] is ANY


def test_unsupported_formal_type_rejected():
    class Custom:
        pass

    with pytest.raises(codec.CodecError):
        codec.encode(template("T", Formal("x", Custom)))


def test_unsupported_object_rejected():
    with pytest.raises(codec.CodecError):
        codec.encode(object())


# ----------------------------------------------------------------------
# Protocol messages
# ----------------------------------------------------------------------


def sample_request() -> ClientRequest:
    return ClientRequest(
        client="alice",
        request_id=3,
        operation="cas",
        arguments=(template("D", Formal("v")), entry("D", 7)),
        auth=(("replica-0", "aa"), ("replica-1", "bb")),
    )


def sample_messages():
    request = sample_request()
    batch = Batch(requests=(request, null_batch(5).requests[0]))
    return [
        request,
        batch,
        ClientReply(
            replica="replica-0",
            view=1,
            request_key=("alice", 3),
            result_digest="d" * 64,
            result=("OK", entry("D", 7)),
        ),
        PrePrepare(view=0, sequence=4, batch_digest=digest(batch), batch=batch, primary="replica-0"),
        Prepare(view=0, sequence=4, batch_digest="x", replica="replica-1"),
        Commit(view=0, sequence=4, batch_digest="x", replica="replica-2"),
        Checkpoint(sequence=8, state_digest="s", replica="replica-3"),
        StateRequest(sequence=8, replica="replica-1"),
        StateResponse(
            sequence=8,
            state_digest="s",
            state=((entry("D", 7),), (("alice", (3, ("OK", None))),)),
            proof=(Checkpoint(sequence=8, state_digest="s", replica="replica-0"),),
            replica="replica-0",
            prepared=((9, 0, batch, True),),
        ),
        ViewChange(
            new_view=2,
            replica="replica-1",
            last_executed=8,
            prepared={9: (0, batch)},
            highest_sequence=9,
            stable_checkpoint=8,
            checkpoint_proof=(Checkpoint(sequence=8, state_digest="s", replica="replica-0"),),
        ),
        NewView(
            view=2,
            primary="replica-2",
            reproposals={9: batch},
            stable_checkpoint=8,
            checkpoint_proof=(),
        ),
    ]


@pytest.mark.parametrize("message", sample_messages(), ids=lambda m: type(m).__name__)
def test_protocol_messages_roundtrip_and_digest_stable(message):
    decoded = roundtrip(message)
    assert decoded == message
    assert type(decoded) is type(message)
    assert digest(decoded) == digest(message)


def test_client_mac_vector_survives_the_wire():
    """A replica must be able to verify the client's MAC vector over the
    *decoded* request — the property that lets backups authenticate
    requests relayed inside a primary's PRE-PREPARE batch."""
    authenticator = MessageAuthenticator(KeyStore())
    request = ClientRequest(
        client="alice", request_id=1, operation="out", arguments=(entry("JOB", 1),)
    )
    request = authenticate_request(request, authenticator, ("replica-0", "replica-1"))
    decoded = roundtrip(request)
    payload = request_auth_payload(decoded)
    for replica_id, mac in decoded.auth:
        assert authenticator.verify("alice", replica_id, payload, mac)


def test_unknown_message_class_rejected():
    with pytest.raises(codec.CodecError):
        codec.decode({"__dc": "EvilMessage", "f": {}})


def test_unknown_tag_rejected():
    with pytest.raises(codec.CodecError):
        codec.decode({"__surprise": 1})


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------


def test_frame_roundtrip_and_mac_over_bytes():
    authenticator = MessageAuthenticator(KeyStore())
    payload = sample_request()
    payload_bytes = codec.encode_payload(payload)
    mac = authenticator.mac("alice", "replica-0", payload_bytes)
    frame = codec.encode_frame("alice", "replica-0", payload_bytes, mac)
    (length,) = struct.unpack(codec.FRAME_HEADER, frame[: struct.calcsize(codec.FRAME_HEADER)])
    body = frame[struct.calcsize(codec.FRAME_HEADER) :]
    assert len(body) == length
    sender, receiver, decoded_bytes, decoded_mac = codec.decode_frame(body)
    assert (sender, receiver) == ("alice", "replica-0")
    assert authenticator.verify(sender, receiver, decoded_bytes, decoded_mac)
    assert codec.decode_payload(decoded_bytes) == payload


def test_tampered_payload_fails_mac():
    authenticator = MessageAuthenticator(KeyStore())
    payload_bytes = codec.encode_payload(("OK", 1))
    mac = authenticator.mac("a", "b", payload_bytes)
    tampered = codec.encode_payload(("OK", 2))
    assert not authenticator.verify("a", "b", tampered, mac)


def test_malformed_frame_rejected():
    with pytest.raises(codec.CodecError):
        codec.decode_frame(b"")
    with pytest.raises(codec.CodecError):
        codec.decode_frame(b"Xjunk")
    with pytest.raises(codec.CodecError):
        codec.decode_frame(b'J{"not":"an envelope"}')
    with pytest.raises(codec.CodecError):
        codec.decode_frame(b"J{this is not json")


def test_deeply_nested_tree_rejected_not_crashed():
    """Pre-authentication input must fail with CodecError, never a
    RecursionError that would kill the serving task."""
    deep = {"__t": []}
    for _ in range(codec.MAX_DEPTH + 10):
        deep = {"__t": [deep]}
    with pytest.raises(codec.CodecError):
        codec.decode(deep)
    # The same attack as raw JSON bytes through the frame parser.
    blob = b"J" + b'{"__t": [' * 40_000 + b"1" + b"]}" * 40_000
    with pytest.raises(codec.CodecError):
        codec.decode_payload(blob)


def test_realistic_payload_depth_fits_the_bound():
    """The deepest genuine protocol message decodes fine under MAX_DEPTH."""
    batch = Batch(requests=(sample_request(),))
    deep_message = NewView(
        view=2,
        primary="replica-2",
        reproposals={9: batch},
        stable_checkpoint=8,
        checkpoint_proof=(Checkpoint(sequence=8, state_digest="s", replica="replica-0"),),
    )
    assert roundtrip(deep_message) == deep_message
