"""Tests for request batching, checkpoints, log truncation and recovery.

Covers the PBFT throughput/garbage-collection machinery: batch assembly at
the primary, checkpoint certificates and the water-mark window, truncation
of every ordering-state structure below the stable checkpoint, batch
safety across view changes, checkpoint-based state transfer for replicas
that missed history, and the client's retransmission backoff.
"""

import pytest

from repro.errors import ReplicationError
from repro.policy import AccessPolicy, Rule
from repro.replication import ReplicatedPEATS
from repro.replication.crypto import KeyStore, MessageAuthenticator
from repro.replication.network import NetworkConfig, SimulatedNetwork
from repro.replication.messages import ClientRequest, authenticate_request
from repro.replication.pbft import OrderingNode, ReplicaFaultMode
from repro.replication.replica import PEATSReplica
from repro.sim import (
    CrashWindow,
    PartitionWindow,
    Scenario,
    ViewChangeStorm,
    run_scenario,
)
from repro.sim.workloads import kv_readwrite, write_burst
from repro.tuples import ANY, entry, template


def open_policy():
    return AccessPolicy(
        [Rule(name, name) for name in ("out", "rdp", "inp", "cas")], name="open"
    )


def make_cluster(n=4, f=1, faults=None, **node_kwargs):
    network = SimulatedNetwork(NetworkConfig(seed=3))
    replica_ids = tuple(f"r{i}" for i in range(n))
    faults = faults or {}
    nodes = []
    for index, replica_id in enumerate(replica_ids):
        nodes.append(
            OrderingNode(
                replica_id,
                replica_ids,
                f,
                PEATSReplica(replica_id, open_policy()),
                network,
                view_change_timeout=10.0,
                fault_mode=faults.get(index, ReplicaFaultMode.CORRECT),
                **node_kwargs,
            )
        )
    replies = []
    network.register("client", lambda sender, payload: replies.append((sender, payload)))
    return network, nodes, replies


# Same default KeyStore as the test networks above, so client MAC vectors
# computed here verify at the replicas.
_AUTH = MessageAuthenticator(KeyStore())
_REPLICAS = tuple(f"r{i}" for i in range(4))


def request_from(client, request_id):
    request = ClientRequest(
        client=client,
        request_id=request_id,
        operation="out",
        arguments=(entry("A", client, request_id),),
    )
    return authenticate_request(request, _AUTH, _REPLICAS)


class TestBatching:
    def test_invalid_parameters_rejected(self):
        network = SimulatedNetwork(NetworkConfig(seed=1))
        replica = PEATSReplica("r0", open_policy())
        with pytest.raises(ReplicationError):
            OrderingNode("r0", ("r0",), 0, replica, network, max_batch_size=0)
        with pytest.raises(ReplicationError):
            OrderingNode("r0", ("r0",), 0, replica, network, checkpoint_interval=0)

    def test_buffered_requests_are_drained_into_one_batch(self):
        # A tight window (one in-flight instance) forces later requests to
        # buffer; once the checkpoint slides the window they must ship as
        # one batch, not one instance each.
        network, nodes, _ = make_cluster(
            max_batch_size=8, checkpoint_interval=1, log_window=1
        )
        requests = [request_from(f"c{i}", 0) for i in range(6)]
        for req in requests:
            network.broadcast(req.client, [n.replica_id for n in nodes], req)
        for req in requests:
            network.register(req.client, lambda sender, payload: None)
        network.run()
        assert all(node.last_executed < len(requests) for node in nodes)
        assert all(node.last_executed >= 2 for node in nodes)
        assert len({n.application.state_digest() for n in nodes}) == 1
        assert all(len(n.application.space.snapshot()) == 6 for n in nodes)

    def test_one_request_is_one_batch_when_nothing_is_buffered(self):
        network, nodes, replies = make_cluster()
        for i in range(3):
            req = request_from("client", i)
            network.broadcast("client", [n.replica_id for n in nodes], req)
            network.run()
        assert all(node.last_executed == 3 for node in nodes)
        assert len(replies) == 12


class TestCheckpointsAndTruncation:
    def test_checkpoint_certificate_truncates_ordering_state(self):
        network, nodes, _ = make_cluster(checkpoint_interval=2)
        for i in range(5):
            req = request_from("client", i)
            network.broadcast("client", [n.replica_id for n in nodes], req)
            network.run()
        for node in nodes:
            assert node.last_executed == 5
            assert node.stable_checkpoint == 4
            # Everything at or below the stable checkpoint is gone.
            assert all(seq > 4 for _, seq in node._pre_prepares)
            assert all(key[1] > 4 for key in node._prepares)
            assert all(key[1] > 4 for key in node._commits)
            assert all(seq > 4 for seq in node._committed)
            assert all(key[1] > 4 for key in node._sent_prepare)
            assert all(key[1] > 4 for key in node._sent_commit)
            # Per-request bookkeeping below the checkpoint is gone too.
            assert len(node._executed_keys) == 1
            assert len(node._executed_at) == 1

    def test_water_mark_bounds_assigned_sequences(self):
        network, nodes, _ = make_cluster(
            max_batch_size=1, checkpoint_interval=2, log_window=4
        )
        primary = nodes[0]
        requests = [request_from(f"c{i}", 0) for i in range(10)]
        for req in requests:
            network.register(req.client, lambda sender, payload: None)
            primary.on_message(req.client, req)
        # Without pumping the network no checkpoint can stabilise, so the
        # primary must stop assigning at the high water mark.
        assert primary.next_sequence == primary.high_water_mark + 1
        assert len(primary._buffered) == 10
        network.run()
        assert all(node.last_executed == 10 for node in nodes)

    def test_retransmission_after_truncation_is_not_reexecuted(self):
        network, nodes, replies = make_cluster(checkpoint_interval=1)
        first = request_from("client", 0)
        network.broadcast("client", [n.replica_id for n in nodes], first)
        network.run()
        second = request_from("client", 1)
        network.broadcast("client", [n.replica_id for n in nodes], second)
        network.run()
        # Both sequences are checkpointed and truncated; the first request's
        # key is no longer in the ordering layer's bookkeeping.
        assert all(node.stable_checkpoint == node.last_executed for node in nodes)
        assert all(first.key not in node._executed_keys for node in nodes)
        snapshots = [len(node.application.space.snapshot()) for node in nodes]
        network.broadcast("client", [n.replica_id for n in nodes], first)
        network.run()
        # The stale retransmission must not re-order or re-execute.
        assert all(node.last_executed == 2 for node in nodes)
        assert [len(node.application.space.snapshot()) for node in nodes] == snapshots

    def test_bounded_state_after_one_thousand_requests(self):
        # Regression for the unbounded-growth bug: _buffered_since,
        # _ordered_keys/_executed_keys and the message log used to retain
        # an entry for every request ever seen.
        result = run_scenario(
            Scenario(
                name="burst-1k",
                clients=kv_readwrite(25, ops_per_client=40, seed=5),
                checkpoint_interval=8,
            )
        )
        assert result.completed
        assert result.metrics.operations_completed == 1000
        for node in result.service.nodes:
            window = node.log_window
            assert node.stable_checkpoint > 0
            assert len(node._pre_prepares) <= window
            assert len(node._committed) <= window
            assert len(node._buffered_since) == 0
            assert len(node._buffered) == 0
            # Request bookkeeping is bounded by what fits in the window,
            # not by the 1000 requests that went through.
            assert len(node._executed_keys) <= window * node.max_batch_size
            assert len(node._executed_at) <= window * node.max_batch_size
            assert len(node._ordered_keys) <= window * node.max_batch_size


class TestBatchSafetyUnderViewChanges:
    def test_batched_requests_survive_primary_crash(self):
        network, nodes, replies = make_cluster(
            faults={0: ReplicaFaultMode.CRASHED}, max_batch_size=4
        )
        requests = [request_from(f"c{i}", 0) for i in range(5)]
        for req in requests:
            network.register(req.client, lambda sender, payload: None)
            network.broadcast(req.client, [n.replica_id for n in nodes], req)
        network.run()
        live = nodes[1:]
        assert all(node.last_executed == 0 for node in live)
        network.advance_time(60.0)
        for node in nodes:
            node.check_timeouts()
        network.run()
        assert all(node.view >= 1 for node in live)
        assert all(node.last_executed >= 1 for node in live)
        assert all(len(node.application.space.snapshot()) == 5 for node in live)
        assert len({node.application.state_digest() for node in live}) == 1

    def test_view_change_storm_does_not_lose_or_duplicate_batches(self):
        result = run_scenario(
            Scenario(
                name="storm-batched",
                clients=write_burst(12, ops_per_client=6),
                faults=(ViewChangeStorm(start=8.0, rounds=3, gap=25.0),),
                checkpoint_interval=4,
                view_change_timeout=30.0,
            )
        )
        assert result.completed
        assert result.metrics.operations_completed == 72
        correct = result.service.correct_nodes()
        assert len({node.application.state_digest() for node in correct}) == 1
        # Exactly 72 tuples: nothing lost, nothing executed twice.
        assert len(result.service.snapshot()) == 72
        # Agreement must come from the protocol itself (replicas stop
        # progressing the old view once they vote), not from the
        # divergence-resync safety net.
        assert all(node.statistics["state_transfers"] == 0 for node in correct)

    def test_truncation_happens_even_under_partition_schedule(self):
        result = run_scenario(
            Scenario(
                name="partition-truncate",
                clients=write_burst(12, ops_per_client=8),
                faults=(PartitionWindow(5.0, 25.0, left=[3], right=[0, 1, 2]),),
                checkpoint_interval=4,
            )
        )
        assert result.completed
        stable = result.service.stable_checkpoints()
        assert all(value > 0 for value in stable.values())
        for node in result.service.nodes:
            assert all(seq > node.stable_checkpoint for _, seq in node._pre_prepares)


class TestCheckpointRecovery:
    def test_crashed_replica_rejoins_via_state_transfer(self):
        # A replica crashed mid-run misses history that the rest of the
        # group garbage-collects at checkpoints; on rejoin it must fetch
        # the latest stable checkpoint instead of replaying from sequence 1
        # (the full incremental catch-up protocol remains follow-up work —
        # this transfers the whole checkpointed state).
        result = run_scenario(
            Scenario(
                name="crash-recover",
                clients=write_burst(8, ops_per_client=12),
                faults=(CrashWindow(replica=2, start=5.0, end=45.0),),
                checkpoint_interval=4,
            )
        )
        assert result.completed
        recovered = result.service.nodes[2]
        others = [node for index, node in enumerate(result.service.nodes) if index != 2]
        assert recovered.statistics["state_transfers"] >= 1
        assert all(node.statistics["state_transfers"] == 0 for node in others)
        # The recovered replica caught up to the group, with converged
        # application state and no stale buffered requests left behind.
        assert recovered.last_executed == others[0].last_executed
        assert recovered.stable_checkpoint == others[0].stable_checkpoint
        assert len(set(result.service.replica_state_digests().values())) == 1
        assert recovered.statistics["buffered"] == 0

    def test_state_transfer_ships_in_window_committed_tail(self):
        # The group executed past its stable checkpoint; a replica that
        # missed everything must catch up to the *tip* via the transferred
        # in-window certificates, not stall at the checkpoint boundary
        # waiting for the next certificate.
        network, nodes, _ = make_cluster(
            checkpoint_interval=8, max_batch_size=1, faults={3: ReplicaFaultMode.CRASHED}
        )
        for i in range(10):
            req = request_from("client", i)
            network.broadcast("client", [n.replica_id for n in nodes], req)
            network.run()
        live = nodes[:3]
        assert all(node.last_executed == 10 for node in live)
        assert all(node.stable_checkpoint == 8 for node in live)
        # Recover the crashed replica and hand it the checkpoint
        # certificate it slept through; it fetches state at 8 and must
        # adopt the committed batches 9 and 10 shipped alongside.
        lagging = nodes[3]
        lagging.fault_mode = ReplicaFaultMode.CORRECT
        for node in live:
            network.send(node.replica_id, lagging.replica_id, node._own_checkpoint)
        network.run()
        assert lagging.statistics["state_transfers"] == 1
        assert lagging.stable_checkpoint == 8
        assert lagging.last_executed == 10
        assert len({node.application.state_digest() for node in nodes}) == 1

    def test_state_response_with_wrong_proof_is_rejected(self):
        network, nodes, _ = make_cluster(checkpoint_interval=2)
        for i in range(3):
            req = request_from("client", i)
            network.broadcast("client", [n.replica_id for n in nodes], req)
            network.run()
        node = nodes[1]
        from repro.replication.messages import StateResponse
        from repro.replication.crypto import digest

        bogus_state = ((), ())
        forged = StateResponse(
            sequence=50,
            state_digest=digest(bogus_state),
            state=bogus_state,
            proof=(),  # no certificate
            replica="r2",
        )
        before = node.last_executed
        node.on_message("r2", forged)
        assert node.last_executed == before
        assert node.statistics["state_transfers"] == 0

    def test_single_byzantine_responder_cannot_install_state(self):
        # Checkpoint proofs are only structurally validated (their inner
        # votes are not origin-authenticated), so one liar can fabricate a
        # plausible certificate — installation therefore requires f + 1
        # distinct responders shipping byte-identical state.
        network, nodes, _ = make_cluster(checkpoint_interval=2)
        node = nodes[1]
        from repro.replication.messages import Checkpoint, StateResponse
        from repro.replication.crypto import digest

        bogus_state = ((), (), (0, (), (), ()))
        bogus_digest = digest(bogus_state)
        forged_proof = tuple(
            Checkpoint(sequence=50, state_digest=bogus_digest, replica=replica)
            for replica in ("r0", "r2", "r3")
        )
        forged = StateResponse(
            sequence=50,
            state_digest=bogus_digest,
            state=bogus_state,
            proof=forged_proof,
            replica="r2",
        )
        node.on_message("r2", forged)
        assert node.last_executed == 0
        assert node.statistics["state_transfers"] == 0
        # A second, distinct responder shipping the same state reaches the
        # f + 1 threshold (one of the two must be correct).
        matching = StateResponse(
            sequence=50,
            state_digest=bogus_digest,
            state=bogus_state,
            proof=forged_proof,
            replica="r3",
        )
        node.on_message("r3", matching)
        assert node.statistics["state_transfers"] == 1
        assert node.last_executed == 50


class TestProtocolMessageAuthorization:
    def test_non_replica_sender_cannot_stuff_checkpoint_quorum(self):
        # A Byzantine *client* can register any number of network
        # identities; none of them may count toward checkpoint (or any
        # other) quorums, or one client could truncate the replicas' logs.
        network, nodes, _ = make_cluster(checkpoint_interval=2)
        from repro.replication.messages import Checkpoint

        node = nodes[1]
        for fake in ("evil-a", "evil-b", "evil-c"):
            node.on_message(
                fake, Checkpoint(sequence=10, state_digest="bogus", replica=fake)
            )
        assert node.stable_checkpoint == 0
        assert len(node._checkpoint_votes) == 0

    def test_non_replica_sender_cannot_fetch_state(self):
        # StateRequest answers ship the full tuple space; honouring one
        # from a client identity would bypass the access policy entirely.
        network, nodes, _ = make_cluster(checkpoint_interval=1)
        req = request_from("client", 0)
        network.broadcast("client", [n.replica_id for n in nodes], req)
        network.run()
        assert nodes[0].stable_checkpoint == 1
        from repro.replication.messages import StateRequest

        responses = []
        network.register("snoop", lambda sender, payload: responses.append(payload))
        nodes[0].on_message("snoop", StateRequest(sequence=1, replica="snoop"))
        network.run()
        assert responses == []

    def test_spoofed_client_identity_is_rejected(self):
        # The channel authenticates the sender, so a request claiming to be
        # from another client must be dropped — otherwise one forged
        # request with a huge request_id would poison the victim's
        # reply-cache high-water mark and freeze it out permanently.
        network, nodes, _ = make_cluster()
        network.register("attacker", lambda sender, payload: None)
        network.register("victim", lambda sender, payload: None)
        forged = request_from("victim", 10**9)
        network.broadcast("attacker", [n.replica_id for n in nodes], forged)
        network.run()
        assert all(node.last_executed == 0 for node in nodes)
        # The victim's genuine traffic still goes through.
        genuine = request_from("victim", 0)
        network.broadcast("victim", [n.replica_id for n in nodes], genuine)
        network.run()
        assert all(node.last_executed == 1 for node in nodes)

    def test_byzantine_primary_cannot_forge_a_request_into_a_batch(self):
        # The request relayed in a PRE-PREPARE batch carries the client's
        # MAC vector; a faulty primary inventing a request under another
        # client's name (or under a ghost name with no keys) cannot produce
        # those MACs, so backups reject the batch and nothing executes.
        network, nodes, _ = make_cluster()
        from repro.replication.crypto import digest
        from repro.replication.messages import Batch, ClientRequest, PrePrepare

        forged = ClientRequest(
            client="ghost", request_id=0, operation="out", arguments=(entry("G", 1),)
        )
        batch = Batch(requests=(forged,))
        message = PrePrepare(
            view=0, sequence=1, batch_digest=digest(batch), batch=batch, primary="r0"
        )
        for node in nodes[1:]:
            network.send("r0", node.replica_id, message)
        network.run()
        # No backup prepared the forged batch, so it can never commit —
        # and the replicas shrug it off without crashing.
        assert all(node.last_executed == 0 for node in nodes[1:])
        assert all(len(node.application.space.snapshot()) == 0 for node in nodes[1:])

    def test_forged_mac_vector_under_real_client_name_is_rejected(self):
        # Even with a registered victim client, a faulty primary cannot
        # splice a fabricated request into a batch: the MAC vector is
        # computed under keys only the client holds.  Stuffing the vector
        # with garbage (or with MACs lifted from a *different* request)
        # fails verification at every backup.
        network, nodes, _ = make_cluster()
        network.register("victim", lambda sender, payload: None)
        from repro.replication.crypto import digest
        from repro.replication.messages import Batch, ClientRequest, PrePrepare
        import dataclasses

        genuine = request_from("victim", 0)
        # Lift the genuine MACs onto a different operation: binding the
        # operation/arguments into the MAC payload must catch the splice.
        spliced = dataclasses.replace(
            ClientRequest(
                client="victim",
                request_id=0,
                operation="inp",
                arguments=(template("A", ANY, ANY),),
            ),
            auth=genuine.auth,
        )
        batch = Batch(requests=(spliced,))
        message = PrePrepare(
            view=0, sequence=1, batch_digest=digest(batch), batch=batch, primary="r0"
        )
        for node in nodes[1:]:
            network.send("r0", node.replica_id, message)
        network.run()
        assert all(node.last_executed == 0 for node in nodes[1:])
        # The genuine request itself still goes through afterwards.
        network.broadcast("victim", [n.replica_id for n in nodes], genuine)
        network.run()
        assert all(node.last_executed == 1 for node in nodes)

    def test_oversized_checkpoint_proof_is_rejected(self):
        network, nodes, _ = make_cluster()
        from repro.replication.messages import Checkpoint

        node = nodes[1]
        vote = Checkpoint(sequence=4, state_digest="d", replica="r0")
        padded = (vote,) * 1000 + tuple(
            Checkpoint(sequence=4, state_digest="d", replica=r) for r in ("r1", "r2")
        )
        assert not node._valid_checkpoint_proof(padded, 4, "d")
        honest = tuple(
            Checkpoint(sequence=4, state_digest="d", replica=r) for r in ("r0", "r1", "r2")
        )
        assert node._valid_checkpoint_proof(honest, 4, "d")

    def test_prepare_and_commit_spray_beyond_window_is_bounded(self):
        # One faulty replica spraying prepares/commits for far-future
        # sequences must not grow the vote maps.
        network, nodes, _ = make_cluster(checkpoint_interval=2)
        from repro.replication.messages import Commit, Prepare

        node = nodes[1]
        for k in range(500):
            sequence = 10**6 + k
            node.on_message(
                "r2", Prepare(view=0, sequence=sequence, batch_digest=f"junk{k}", replica="r2")
            )
            node.on_message(
                "r2", Commit(view=0, sequence=sequence, batch_digest=f"junk{k}", replica="r2")
            )
        assert len(node._prepares) == 0
        assert len(node._commits) == 0

    def test_checkpoint_vote_bookkeeping_is_bounded_per_replica(self):
        # A faulty replica spraying artificial checkpoint sequences must
        # overwrite its own vote slot, not grow the map without bound.
        network, nodes, _ = make_cluster(checkpoint_interval=2)
        from repro.replication.messages import Checkpoint

        node = nodes[1]
        for sequence in range(10, 200):
            node.on_message(
                "r2", Checkpoint(sequence=sequence, state_digest=f"d{sequence}", replica="r2")
            )
        assert len(node._checkpoint_votes) == 1
        assert node.stable_checkpoint == 0


class TestRetransmissionBackoff:
    def test_backoff_is_exponential_and_capped(self):
        service = ReplicatedPEATS(open_policy(), f=1)
        client = service.client("c1")
        delays = [client._retransmit_delay(attempts) for attempts in range(6)]
        assert delays[0] == pytest.approx(100.0)
        assert delays[1] == pytest.approx(200.0)
        assert delays[2] == pytest.approx(400.0)
        assert delays[4] == pytest.approx(1600.0)
        assert delays[5] == pytest.approx(1600.0)  # capped

    def test_unreachable_service_sees_few_retransmissions(self):
        # With the old fixed 100 ms interval a dead service would see ~31
        # retransmissions by t=3200; exponential backoff sends a handful.
        service = ReplicatedPEATS(
            open_policy(),
            f=1,
            replica_faults={index: ReplicaFaultMode.CRASHED for index in range(4)},
        )
        client = service.client("c1")
        client.submit("out", (entry("A", 1),))
        service.network.run_until_time(3200.0)
        assert 1 <= client.statistics["retransmissions"] <= 6

    def test_bounded_retransmissions_during_view_change_storm(self):
        result = run_scenario(
            Scenario(
                name="storm-backoff",
                clients=write_burst(10, ops_per_client=4),
                faults=(ViewChangeStorm(start=5.0, rounds=4, gap=20.0),),
                view_change_timeout=30.0,
            )
        )
        assert result.completed
        total_requests = sum(
            runner.client.statistics["requests"] for runner in result.engine.runners
        )
        total_retransmissions = sum(
            runner.client.statistics["retransmissions"] for runner in result.engine.runners
        )
        assert total_requests == 40
        # The storm stalls progress for a few hundred virtual ms; backoff
        # keeps the retransmission amplification well below one per stalled
        # interval per client.
        assert total_retransmissions <= total_requests
