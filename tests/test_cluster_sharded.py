"""End-to-end tests for the sharded PEATS cluster.

Covers the tentpole properties: operations route to the owning replica
group and nowhere else (isolation), the groups coexist on one network
without cross-talk, wildcard-name templates are rejected as cross-shard,
sharded scenarios replay deterministically with per-shard-tagged metrics,
faults can target a single shard, and a crash on one shard leaves the
other shard's throughput untouched.
"""

import pytest

from repro.cluster import ExplicitRouting, ShardedPEATS
from repro.errors import CrossShardError, ReplicationError
from repro.replication.pbft import ReplicaFaultMode
from repro.sim import (
    CrashWindow,
    Scenario,
    ViewChangeStorm,
    open_sim_policy,
    run_scenario,
)
from repro.sim.workloads import multi_shard_kv, write_burst
from repro.tuples import ANY, Formal, entry, template


def two_shard_cluster(**kwargs):
    routing = ExplicitRouting({"KV-0": 0, "KV-1": 1, "A": 0, "B": 1})
    return ShardedPEATS(open_sim_policy(), shards=2, routing=routing, f=1, **kwargs)


class TestShardedService:
    def test_operations_land_on_the_owning_group_only(self):
        cluster = two_shard_cluster()
        view = cluster.client_view("p1")
        assert view.out(entry("A", 1)) is True
        assert view.out(entry("B", 2)) is True
        # Each group's replicas hold exactly their shard's tuples.
        for node in cluster.group(0).nodes:
            assert [e.fields[0] for e in node.application.space.snapshot()] == ["A"]
        for node in cluster.group(1).nodes:
            assert [e.fields[0] for e in node.application.space.snapshot()] == ["B"]
        # The cluster snapshot is the union, in shard order.
        assert [e.fields[0] for e in cluster.snapshot()] == ["A", "B"]

    def test_reads_and_cas_route_with_the_writes(self):
        cluster = two_shard_cluster()
        view = cluster.client_view("p1")
        view.out(entry("B", 7))
        assert view.rdp(template("B", Formal("x"))).fields[1] == 7
        inserted, existing = view.cas(template("A", Formal("d")), entry("A", 1))
        assert inserted is True and existing is None
        assert view.inp(template("B", ANY)).fields[1] == 7
        assert view.rdp(template("B", ANY)) is None

    def test_blocking_read_works_within_a_shard(self):
        cluster = two_shard_cluster()
        producer = cluster.client_view("writer")
        consumer = cluster.client_view("reader")
        producer.out(entry("A", "ready"))
        assert consumer.rd(template("A", ANY), timeout=200.0).fields[1] == "ready"
        with pytest.raises(TimeoutError):
            consumer.in_(template("B", ANY), timeout=30.0)

    def test_wildcard_name_is_rejected_as_cross_shard(self):
        cluster = two_shard_cluster()
        view = cluster.client_view("p1")
        with pytest.raises(CrossShardError):
            view.rdp(template(ANY, 1))
        with pytest.raises(CrossShardError):
            view.inp(template(Formal("name"), ANY))
        with pytest.raises(CrossShardError):
            view.cas(template(ANY, ANY), entry("A", 1))

    def test_groups_do_not_cross_talk(self):
        # Both groups order traffic concurrently on one network; replica
        # ids are namespaced per shard, every group multicasts only within
        # itself, and each group's correct replicas converge on their own
        # state digest — tuples never leak between groups.
        cluster = two_shard_cluster()
        view = cluster.client_view("p1")
        for i in range(6):
            view.out(entry("A", i))
            view.out(entry("B", i))
        for group in cluster.groups:
            digests = {node.application.state_digest() for node in group.nodes}
            assert len(digests) == 1
        digest_a = cluster.group(0).nodes[0].application.state_digest()
        digest_b = cluster.group(1).nodes[0].application.state_digest()
        assert digest_a != digest_b
        assert len(cluster.replica_ids) == 8
        assert len(set(cluster.replica_ids)) == 8
        assert all(":" in rid for rid in cluster.replica_ids)

    def test_per_shard_replica_faults_are_tolerated(self):
        # A lying replica on shard 1 (addressed by (shard, index)) is
        # outvoted by that group's f + 1 matching replies; shard 0 keyed
        # flat (index 1 of group 0) stays crashed without hurting safety.
        cluster = two_shard_cluster(
            replica_faults={(1, 2): ReplicaFaultMode.LYING, 1: ReplicaFaultMode.CRASHED}
        )
        assert cluster.group(1).nodes[2].fault_mode is ReplicaFaultMode.LYING
        assert cluster.group(0).nodes[1].fault_mode is ReplicaFaultMode.CRASHED
        view = cluster.client_view("p1")
        assert view.out(entry("A", 1)) is True
        assert view.out(entry("B", 2)) is True
        assert view.rdp(template("B", ANY)).fields[1] == 2

    def test_replicas_of_other_shards_cannot_vote_on_a_reply(self):
        # The cluster tolerates f Byzantine replicas *per group*; if
        # off-group replicas could vote on a request's reply, two liars
        # from different groups could pool fabricated replies into an
        # f + 1 quorum for a result the owning group never executed.
        cluster = two_shard_cluster()
        client = cluster.client("p1")
        pending = client.submit("out", (entry("A", 1),))
        from repro.replication.crypto import digest
        from repro.replication.messages import ClientReply

        forged_result = ("OK", "forged")
        for replica in cluster.group(1).replica_ids[:2]:
            cluster.network.send(
                replica,
                "p1",
                ClientReply(
                    replica=replica,
                    view=0,
                    request_key=pending.request.key,
                    result_digest=digest(forged_result),
                    result=forged_result,
                ),
            )
        # The forged replies arrive well before the owning group finishes
        # its three ordering phases; were they counted, the vote would
        # resolve to the forged result first.
        cluster.network.run_until(lambda: pending.done)
        assert pending.done
        assert pending.result() == ("OK", True)  # the genuine group's answer

    def test_invalid_configurations_are_rejected(self):
        with pytest.raises(ReplicationError):
            ShardedPEATS(open_sim_policy(), shards=0)
        with pytest.raises(ReplicationError):
            two_shard_cluster(replica_faults={(2, 0): ReplicaFaultMode.CRASHED})
        with pytest.raises(ReplicationError):
            two_shard_cluster(replica_faults={9: ReplicaFaultMode.CRASHED})
        with pytest.raises(ReplicationError):
            cluster = two_shard_cluster()
            cluster.group(5)


def sharded_scenario(seed=9, faults=(), locality=1.0, replica_faults={}):
    return Scenario(
        name="sharded-kv",
        clients=multi_shard_kv(12, shards=2, ops_per_client=6, locality=locality, seed=2),
        shards=2,
        routing=ExplicitRouting({"KV-0": 0, "KV-1": 1}),
        faults=tuple(faults),
        replica_faults=dict(replica_faults),
        seed=seed,
    )


class TestShardedScenarios:
    def test_tuple_fault_keys_work_at_one_shard_too(self):
        # A shard sweep reuses one fault spec across shard counts: the
        # (0, index) form must hit the same replica when the scenario
        # deploys a single group instead of being silently dropped.
        scenario = Scenario(
            name="flat-faults",
            clients=multi_shard_kv(4, shards=1, ops_per_client=2, seed=2),
            shards=1,
            replica_faults={(0, 2): ReplicaFaultMode.CRASHED},
            seed=3,
        )
        result = run_scenario(scenario)
        assert result.completed
        assert result.service.nodes[2].fault_mode is ReplicaFaultMode.CRASHED
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            run_scenario(
                Scenario(
                    name="bad-shard-key",
                    clients=multi_shard_kv(2, shards=1, ops_per_client=1, seed=2),
                    shards=1,
                    replica_faults={(1, 0): ReplicaFaultMode.CRASHED},
                    seed=3,
                )
            )

    def test_sharded_scenario_completes_with_shard_tagged_metrics(self):
        result = run_scenario(sharded_scenario())
        assert result.completed
        assert result.metrics.operations_completed == 72
        by_shard = result.metrics.by_shard()
        assert set(by_shard) == {0, 1}
        assert sum(row["ops"] for row in by_shard.values()) == 72
        # With locality 1.0, half the clients live on each shard.
        assert by_shard[0]["ops"] == by_shard[1]["ops"] == 36
        # The shard filter partitions the aggregate series exactly.
        total = sum(count for _, count in result.metrics.throughput_series())
        split = sum(
            count
            for shard in (0, 1)
            for _, count in result.metrics.throughput_series(shard)
        )
        assert total == split == 72

    def test_sharded_scenario_replays_byte_identically(self):
        first = run_scenario(sharded_scenario(seed=21, locality=0.7))
        second = run_scenario(sharded_scenario(seed=21, locality=0.7))
        assert first.metrics.trace_text() == second.metrics.trace_text()
        assert first.metrics.by_shard() == second.metrics.by_shard()
        third = run_scenario(sharded_scenario(seed=22, locality=0.7))
        assert first.metrics.trace_text() != third.metrics.trace_text()

    def test_view_change_storm_can_target_one_shard(self):
        result = run_scenario(
            Scenario(
                name="storm-one-shard",
                clients=write_burst(8, ops_per_client=4, spread=2),
                shards=2,
                routing=ExplicitRouting({"BURST-0": 0, "BURST-1": 1}),
                faults=(ViewChangeStorm(start=4.0, rounds=1, shard=0),),
                seed=13,
            )
        )
        assert result.completed
        views_0 = {node.view for node in result.service.group(0).nodes}
        views_1 = {node.view for node in result.service.group(1).nodes}
        assert views_0 == {1}
        assert views_1 == {0}

    def test_crash_on_one_shard_leaves_the_other_unaffected(self):
        # Crash shard 0's primary mid-run: shard 0 rides out a view change
        # (its stalled operations take at least the view-change timeout),
        # while shard 1 — its own group, its own primary — never notices.
        crash = CrashWindow(replica=0, shard=0, start=2.0)
        result = run_scenario(
            Scenario(
                name="crash-shard-0",
                clients=multi_shard_kv(12, shards=2, ops_per_client=6, locality=1.0, seed=2),
                shards=2,
                routing=ExplicitRouting({"KV-0": 0, "KV-1": 1}),
                faults=(crash,),
                view_change_timeout=50.0,
                seed=9,
            )
        )
        assert result.completed
        by_shard = result.metrics.by_shard()
        assert by_shard[0]["ops"] == by_shard[1]["ops"] == 36
        # Shard 0 paid for the primary failure...
        assert by_shard[0]["latency_max"] > 50.0
        assert result.service.group(0).nodes[1].view >= 1
        # ...and shard 1 stayed on its primary with sub-timeout latencies.
        assert by_shard[1]["latency_max"] < 50.0
        assert all(node.view == 0 for node in result.service.group(1).nodes)
