"""benchmarks/compare.py — the bench-regression gate's decision logic."""

from __future__ import annotations

import copy
import json
import sys
import pathlib

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.compare import (  # noqa: E402
    compare_payloads,
    extract_metrics,
    main,
    render_report,
)

CALIBRATION = {
    "benchmark": "net_calibration",
    "sim_sweep": [
        {"processing_time": 0.0, "ops_per_sec": 2000.0},
        {"processing_time": 0.2, "ops_per_sec": 700.0},
    ],
    "loopback": {"ops_per_sec": 650.0, "latency_p50": 21.0},
    "calibration": {"prediction_ratio": 1.1},
}

POLICY = {
    "benchmark": "policy_enforcement",
    "attack_battery": [
        {"policy": "weak", "attacks": 12, "denied": 12, "denied_pct": 100.0},
    ],
    "enforcement_overhead": {
        "rounds": 400,
        "enforced_us_per_round": 100.0,
        "raw_us_per_round": 25.0,
        "overhead_factor": 4.0,
    },
}


OBS = {
    "benchmark": "obs_overhead",
    "overhead": {
        "repeats": 5,
        "arms": {
            "bare": {"best_seconds": 0.025, "flight_events": 0},
            "tracer": {"best_seconds": 0.026, "flight_events": 0},
            "full": {"best_seconds": 0.028, "flight_events": 800},
        },
        "tracer_vs_bare_factor": 1.04,
        "full_vs_tracer_factor": 1.08,
        "full_vs_bare_factor": 1.12,
        "trace_digest": "d" * 64,
    },
}


def payloads():
    return {
        "BENCH_net_calibration.json": copy.deepcopy(CALIBRATION),
        "BENCH_obs_overhead.json": copy.deepcopy(OBS),
        "BENCH_policy_enforcement.json": copy.deepcopy(POLICY),
    }


def test_extractors_classify_gated_vs_informational():
    metrics = {m.name: m for m in extract_metrics("BENCH_net_calibration.json", CALIBRATION)}
    assert metrics["sim_sweep[pt=0.0].ops_per_sec"].gated
    assert not metrics["loopback.ops_per_sec"].gated
    policy = {m.name: m for m in extract_metrics("BENCH_policy_enforcement.json", POLICY)}
    assert policy["attack_battery[weak].denied_pct"].gated
    assert policy["enforcement_overhead.overhead_factor"].gated
    assert not policy["enforcement_overhead.enforced_us_per_round"].gated
    obs = {m.name: m for m in extract_metrics("BENCH_obs_overhead.json", OBS)}
    assert obs["obs_overhead.full_vs_bare_factor"].gated
    assert not obs["obs_overhead.full_vs_tracer_factor"].gated
    assert not obs["obs_overhead.full_best_seconds"].gated
    assert extract_metrics("BENCH_unknown.json", {}) == []


def test_obs_overhead_factor_gates_at_ten_percent():
    fresh = payloads()
    fresh["BENCH_obs_overhead.json"]["overhead"]["full_vs_bare_factor"] = 1.30  # +16%
    report = compare_payloads(payloads(), fresh, threshold=0.10)
    assert not report["ok"]
    assert any("full_vs_bare_factor" in item for item in report["regressions"])
    # The same move passes at the default 25% threshold: only the
    # dedicated CI comparison holds this file to 10%.
    assert compare_payloads(payloads(), fresh, threshold=0.25)["ok"]


def test_identical_runs_pass():
    report = compare_payloads(payloads(), payloads())
    assert report["ok"] and not report["regressions"]
    assert all(row["status"] in ("ok", "new") for row in report["rows"])


def test_gated_throughput_drop_fails():
    fresh = payloads()
    fresh["BENCH_net_calibration.json"]["sim_sweep"][0]["ops_per_sec"] = 1400.0  # -30%
    report = compare_payloads(payloads(), fresh, threshold=0.25)
    assert not report["ok"]
    assert any("sim_sweep[pt=0.0]" in item for item in report["regressions"])


def test_informational_wallclock_drop_never_fails():
    fresh = payloads()
    fresh["BENCH_net_calibration.json"]["loopback"]["ops_per_sec"] = 100.0  # -85%
    report = compare_payloads(payloads(), fresh, threshold=0.25)
    assert report["ok"]


def test_lower_is_better_metric_regresses_upward():
    fresh = payloads()
    fresh["BENCH_policy_enforcement.json"]["enforcement_overhead"]["overhead_factor"] = 6.0
    report = compare_payloads(payloads(), fresh, threshold=0.25)
    assert not report["ok"]
    assert any("overhead_factor" in item for item in report["regressions"])


def test_within_threshold_move_passes():
    fresh = payloads()
    fresh["BENCH_net_calibration.json"]["sim_sweep"][0]["ops_per_sec"] = 1600.0  # -20%
    report = compare_payloads(payloads(), fresh, threshold=0.25)
    assert report["ok"]


def test_missing_fresh_file_fails_and_new_file_is_fine():
    fresh = payloads()
    del fresh["BENCH_policy_enforcement.json"]
    report = compare_payloads(payloads(), fresh)
    assert not report["ok"]
    baseline = payloads()
    del baseline["BENCH_policy_enforcement.json"]
    report = compare_payloads(baseline, payloads())
    assert report["ok"]
    assert any(row.get("status") == "new" for row in report["rows"])


def test_injected_degradation_trips_every_gated_metric():
    report = compare_payloads(payloads(), payloads(), inject=0.6, threshold=0.25)
    assert not report["ok"]
    gated = [row for row in report["rows"] if row.get("gated")]
    assert gated and all(row["status"] == "regression" for row in gated)
    info = [row for row in report["rows"] if row.get("gated") is False]
    assert all(row["status"] == "ok" for row in info)


def test_render_report_mentions_regressions():
    report = compare_payloads(payloads(), payloads(), inject=0.5)
    text = render_report(report)
    assert "REGRESSIONS:" in text
    clean = render_report(compare_payloads(payloads(), payloads()))
    assert "no gated regressions" in clean


def test_cli_end_to_end(tmp_path):
    baseline_dir = tmp_path / "baseline"
    fresh_dir = tmp_path / "fresh"
    baseline_dir.mkdir()
    fresh_dir.mkdir()
    for name, payload in payloads().items():
        (baseline_dir / name).write_text(json.dumps(payload))
        (fresh_dir / name).write_text(json.dumps(payload))
    report_path = tmp_path / "diff.json"
    assert (
        main(
            [
                "--baseline", str(baseline_dir),
                "--fresh", str(fresh_dir),
                "--report", str(report_path),
            ]
        )
        == 0
    )
    assert json.loads(report_path.read_text())["ok"]
    # The self-test mode: exit 0 only when the injected regression trips.
    assert (
        main(
            [
                "--baseline", str(baseline_dir),
                "--fresh", str(fresh_dir),
                "--inject", "0.6",
                "--expect-regression",
            ]
        )
        == 0
    )
    # And a clean comparison with --expect-regression must fail.
    assert (
        main(["--baseline", str(baseline_dir), "--fresh", str(fresh_dir), "--expect-regression"])
        == 1
    )
    # Empty baseline directory is a usage error.
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["--baseline", str(empty), "--fresh", str(fresh_dir)]) == 2


def test_cli_detects_real_regression(tmp_path):
    baseline_dir = tmp_path / "baseline"
    fresh_dir = tmp_path / "fresh"
    baseline_dir.mkdir()
    fresh_dir.mkdir()
    fresh = payloads()
    fresh["BENCH_net_calibration.json"]["sim_sweep"][1]["ops_per_sec"] = 100.0
    for name, payload in payloads().items():
        (baseline_dir / name).write_text(json.dumps(payload))
    for name, payload in fresh.items():
        (fresh_dir / name).write_text(json.dumps(payload))
    assert main(["--baseline", str(baseline_dir), "--fresh", str(fresh_dir)]) == 1
