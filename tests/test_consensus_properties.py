"""Property-based tests for the consensus objects (hypothesis).

The properties come straight from the paper's definitions: Agreement,
(Strong / Default Strong) Validity and termination at or above the
resilience bound, under randomly drawn proposal vectors, schedules and
Byzantine strategies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import DefaultConsensus, StrongConsensus, WeakConsensus, run_consensus
from repro.consensus.base import (
    check_agreement,
    check_default_strong_validity,
    check_strong_validity,
    check_validity,
)
from repro.model.faults import (
    bottom_forcing_byzantine,
    conflicting_value_byzantine,
    double_proposing_byzantine,
    impersonating_byzantine,
    silent_byzantine,
    spamming_byzantine,
    unjustified_deciding_byzantine,
)
from repro.model.scheduler import random_schedule
from repro.policy.library import BOTTOM

#: The Byzantine strategies drawn for the strong/default consensus runs.
byzantine_strategies = st.sampled_from(
    [
        silent_byzantine,
        double_proposing_byzantine(0, 1),
        conflicting_value_byzantine(0),
        impersonating_byzantine(victim=0, value=0),
        unjustified_deciding_byzantine(value=0, fake_supporters=(3,)),
        spamming_byzantine(rounds=3),
    ]
)


@settings(max_examples=30, deadline=None)
@given(
    proposals=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_weak_consensus_agreement_and_validity(proposals, seed):
    consensus = WeakConsensus.create()
    mapping = {f"p{i}": value for i, value in enumerate(proposals)}
    run = run_consensus(consensus, mapping, schedule=random_schedule(seed))
    assert run.terminated
    outcomes = list(run.outcomes.values())
    assert check_agreement(outcomes)
    assert check_validity(outcomes, mapping.values())


@settings(max_examples=30, deadline=None)
@given(
    correct_values=st.lists(st.integers(min_value=0, max_value=1), min_size=3, max_size=3),
    strategy=byzantine_strategies,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_strong_binary_consensus_with_one_byzantine(correct_values, strategy, seed):
    """n = 4, t = 1: three correct proposers plus one adversarial process."""
    consensus = StrongConsensus(range(4), 1)
    proposals = {i: value for i, value in enumerate(correct_values)}
    run = run_consensus(
        consensus,
        proposals,
        byzantine={3: strategy},
        schedule=random_schedule(seed),
        max_rounds=2000,
    )
    assert run.terminated
    outcomes = list(run.outcomes.values())
    assert check_agreement(outcomes)
    assert check_strong_validity(outcomes, proposals.values())


@settings(max_examples=25, deadline=None)
@given(
    n_and_t=st.sampled_from([(4, 1), (7, 2), (10, 3)]),
    seed=st.integers(min_value=0, max_value=2**16),
    data=st.data(),
)
def test_strong_binary_consensus_scales_with_population(n_and_t, seed, data):
    n, t = n_and_t
    values = data.draw(
        st.lists(st.integers(min_value=0, max_value=1), min_size=n - t, max_size=n - t)
    )
    consensus = StrongConsensus(range(n), t)
    proposals = {i: v for i, v in enumerate(values)}
    run = run_consensus(
        consensus, proposals, schedule=random_schedule(seed), max_rounds=5000
    )
    assert run.terminated
    outcomes = list(run.outcomes.values())
    assert check_agreement(outcomes)
    assert check_strong_validity(outcomes, proposals.values())


@settings(max_examples=25, deadline=None)
@given(
    correct_values=st.lists(
        st.sampled_from(["a", "b", "c", "d"]), min_size=3, max_size=3
    ),
    use_bottom_forcer=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_default_consensus_properties(correct_values, use_bottom_forcer, seed):
    consensus = DefaultConsensus(range(4), 1)
    proposals = {i: value for i, value in enumerate(correct_values)}
    byzantine = {3: bottom_forcing_byzantine()} if use_bottom_forcer else {3: silent_byzantine}
    run = run_consensus(
        consensus,
        proposals,
        byzantine=byzantine,
        schedule=random_schedule(seed),
        max_rounds=2000,
    )
    assert run.terminated
    outcomes = list(run.outcomes.values())
    assert check_agreement(outcomes)
    assert check_default_strong_validity(outcomes, proposals, BOTTOM)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_weak_consensus_single_stored_tuple_invariant(seed):
    """Whatever the schedule, the Fig. 3 policy admits exactly one tuple."""
    consensus = WeakConsensus.create()
    mapping = {f"p{i}": i for i in range(6)}
    run_consensus(consensus, mapping, schedule=random_schedule(seed))
    assert len(consensus.space.snapshot()) == 1
