"""Tests for the canonical policies of Figs. 1, 3, 4 and 5.

The policies are exercised directly through the policy evaluator with a raw
augmented tuple space as the object state, mirroring how the reference
monitor inside a PEATS (or a replica) uses them.
"""

import pytest

from repro.policy import (
    default_consensus_policy,
    monotonic_register_policy,
    strong_consensus_policy,
    weak_consensus_policy,
)
from repro.policy.invocation import Invocation
from repro.policy.library import BOTTOM
from repro.tspace import AugmentedTupleSpace
from repro.tuples import ANY, Formal, entry, template


def evaluate(policy, space, process, operation, *arguments):
    allowed, _, _ = policy.evaluate(
        Invocation(process=process, operation=operation, arguments=tuple(arguments)), space
    )
    return allowed


class TestMonotonicRegisterPolicy:
    """Fig. 1: anyone reads, listed writers may only increase the value."""

    policy = monotonic_register_policy({"p1", "p2", "p3"})

    def test_anyone_may_read(self):
        assert evaluate(self.policy, 5, "p9", "read")

    def test_writer_may_increase(self):
        assert evaluate(self.policy, 5, "p1", "write", 6)

    def test_writer_may_not_decrease_or_repeat(self):
        assert not evaluate(self.policy, 5, "p1", "write", 5)
        assert not evaluate(self.policy, 5, "p1", "write", 4)

    def test_non_writer_denied(self):
        assert not evaluate(self.policy, 5, "p9", "write", 100)

    def test_unknown_operation_denied(self):
        assert not evaluate(self.policy, 5, "p1", "reset")


class TestWeakConsensusPolicy:
    """Fig. 3: only the DECISION cas with a formal template field is allowed."""

    policy = weak_consensus_policy()

    def test_valid_cas_allowed(self):
        space = AugmentedTupleSpace()
        assert evaluate(
            self.policy, space, "p1", "cas",
            template("DECISION", Formal("d")), entry("DECISION", 1),
        )

    def test_reads_and_removals_denied(self):
        space = AugmentedTupleSpace()
        assert not evaluate(self.policy, space, "p1", "rdp", template("DECISION", ANY))
        assert not evaluate(self.policy, space, "p1", "inp", template("DECISION", ANY))
        assert not evaluate(self.policy, space, "p1", "out", entry("DECISION", 1))

    def test_cas_without_formal_field_denied(self):
        space = AugmentedTupleSpace()
        assert not evaluate(
            self.policy, space, "p1", "cas",
            template("DECISION", 1), entry("DECISION", 1),
        )

    def test_cas_with_wrong_name_or_arity_denied(self):
        space = AugmentedTupleSpace()
        assert not evaluate(
            self.policy, space, "p1", "cas",
            template("OTHER", Formal("d")), entry("OTHER", 1),
        )
        assert not evaluate(
            self.policy, space, "p1", "cas",
            template("DECISION", Formal("d"), ANY), entry("DECISION", 1, 2),
        )


class TestStrongConsensusPolicy:
    """Fig. 4: single proposal per process, decision justified by t+1 proposals."""

    processes = (0, 1, 2, 3)
    t = 1
    policy = strong_consensus_policy(processes, t)

    def space_with_proposals(self, proposals):
        space = AugmentedTupleSpace()
        for process, value in proposals.items():
            space.out(entry("PROPOSE", process, value))
        return space

    def test_reads_allowed_for_everyone(self):
        space = self.space_with_proposals({0: 1})
        assert evaluate(self.policy, space, 3, "rdp", template("PROPOSE", 0, Formal("v")))
        assert evaluate(self.policy, space, 3, "rd", template("PROPOSE", ANY, Formal("v")))

    def test_first_proposal_allowed(self):
        space = AugmentedTupleSpace()
        assert evaluate(self.policy, space, 0, "out", entry("PROPOSE", 0, 1))

    def test_second_proposal_by_same_process_denied(self):
        space = self.space_with_proposals({0: 1})
        assert not evaluate(self.policy, space, 0, "out", entry("PROPOSE", 0, 0))

    def test_impersonated_proposal_denied(self):
        space = AugmentedTupleSpace()
        assert not evaluate(self.policy, space, 0, "out", entry("PROPOSE", 1, 1))

    def test_unknown_process_denied(self):
        space = AugmentedTupleSpace()
        assert not evaluate(self.policy, space, 9, "out", entry("PROPOSE", 9, 1))

    def test_out_of_domain_value_denied(self):
        space = AugmentedTupleSpace()
        assert not evaluate(self.policy, space, 0, "out", entry("PROPOSE", 0, 7))

    def test_removals_denied(self):
        space = self.space_with_proposals({0: 1})
        assert not evaluate(self.policy, space, 0, "inp", template("PROPOSE", 0, ANY))

    def test_justified_decision_allowed(self):
        space = self.space_with_proposals({0: 1, 1: 1, 2: 0})
        assert evaluate(
            self.policy, space, 2, "cas",
            template("DECISION", Formal("d"), ANY),
            entry("DECISION", 1, frozenset({0, 1})),
        )

    def test_decision_with_too_small_justification_denied(self):
        space = self.space_with_proposals({0: 1})
        assert not evaluate(
            self.policy, space, 0, "cas",
            template("DECISION", Formal("d"), ANY),
            entry("DECISION", 1, frozenset({0})),
        )

    def test_decision_whose_supporters_did_not_propose_value_denied(self):
        space = self.space_with_proposals({0: 1, 1: 0, 2: 0})
        assert not evaluate(
            self.policy, space, 0, "cas",
            template("DECISION", Formal("d"), ANY),
            entry("DECISION", 1, frozenset({0, 1})),
        )

    def test_decision_with_unknown_supporters_denied(self):
        space = self.space_with_proposals({0: 1, 1: 1})
        assert not evaluate(
            self.policy, space, 0, "cas",
            template("DECISION", Formal("d"), ANY),
            entry("DECISION", 1, frozenset({0, "ghost"})),
        )

    def test_decision_without_formal_template_field_denied(self):
        space = self.space_with_proposals({0: 1, 1: 1})
        assert not evaluate(
            self.policy, space, 0, "cas",
            template("DECISION", 1, ANY),
            entry("DECISION", 1, frozenset({0, 1})),
        )

    def test_justification_must_be_a_frozenset(self):
        space = self.space_with_proposals({0: 1, 1: 1})
        assert not evaluate(
            self.policy, space, 0, "cas",
            template("DECISION", Formal("d"), ANY),
            entry("DECISION", 1, (0, 1)),
        )

    def test_k_valued_variant_accepts_larger_domain(self):
        policy = strong_consensus_policy(range(7), 2, values=(0, 1, 2))
        space = AugmentedTupleSpace()
        assert evaluate(policy, space, 4, "out", entry("PROPOSE", 4, 2))
        assert not evaluate(policy, space, 4, "out", entry("PROPOSE", 4, 5))

    def test_unrestricted_domain(self):
        policy = strong_consensus_policy(self.processes, self.t, values=None)
        space = AugmentedTupleSpace()
        assert evaluate(policy, space, 0, "out", entry("PROPOSE", 0, "anything"))


class TestDefaultConsensusPolicy:
    """Fig. 5: proposals may not be ⊥; ⊥ decisions need an n - t proof."""

    processes = (0, 1, 2, 3)
    t = 1
    policy = default_consensus_policy(processes, t)

    def space_with_proposals(self, proposals):
        space = AugmentedTupleSpace()
        for process, value in proposals.items():
            space.out(entry("PROPOSE", process, value))
        return space

    def test_bottom_proposal_denied(self):
        space = AugmentedTupleSpace()
        assert not evaluate(self.policy, space, 0, "out", entry("PROPOSE", 0, BOTTOM))

    def test_normal_proposal_allowed(self):
        space = AugmentedTupleSpace()
        assert evaluate(self.policy, space, 0, "out", entry("PROPOSE", 0, "v"))

    def test_value_decision_needs_t_plus_1_support(self):
        space = self.space_with_proposals({0: "a", 1: "a", 2: "b"})
        assert evaluate(
            self.policy, space, 0, "cas",
            template("DECISION", Formal("d"), ANY),
            entry("DECISION", "a", frozenset({0, 1})),
        )
        assert not evaluate(
            self.policy, space, 0, "cas",
            template("DECISION", Formal("d"), ANY),
            entry("DECISION", "b", frozenset({2})),
        )

    def test_valid_bottom_decision(self):
        # Four processes, t = 1: proposals split a/b/c cover n - t = 3
        # processes with no value reaching t + 1 = 2.
        space = self.space_with_proposals({0: "a", 1: "b", 2: "c"})
        proof = frozenset(
            {("a", frozenset({0})), ("b", frozenset({1})), ("c", frozenset({2}))}
        )
        assert evaluate(
            self.policy, space, 3, "cas",
            template("DECISION", Formal("d"), ANY),
            entry("DECISION", BOTTOM, proof),
        )

    def test_bottom_decision_with_insufficient_coverage_denied(self):
        space = self.space_with_proposals({0: "a", 1: "b"})
        proof = frozenset({("a", frozenset({0})), ("b", frozenset({1}))})
        assert not evaluate(
            self.policy, space, 3, "cas",
            template("DECISION", Formal("d"), ANY),
            entry("DECISION", BOTTOM, proof),
        )

    def test_bottom_decision_with_oversized_group_denied(self):
        # A group with more than t members proves a value had t + 1 support,
        # so using it to justify ⊥ is rejected.
        space = self.space_with_proposals({0: "a", 1: "a", 2: "b"})
        proof = frozenset({("a", frozenset({0, 1})), ("b", frozenset({2}))})
        assert not evaluate(
            self.policy, space, 3, "cas",
            template("DECISION", Formal("d"), ANY),
            entry("DECISION", BOTTOM, proof),
        )

    def test_bottom_decision_with_fabricated_members_denied(self):
        space = self.space_with_proposals({0: "a"})
        proof = frozenset(
            {("a", frozenset({0})), ("b", frozenset({1})), ("c", frozenset({2}))}
        )
        assert not evaluate(
            self.policy, space, 3, "cas",
            template("DECISION", Formal("d"), ANY),
            entry("DECISION", BOTTOM, proof),
        )

    def test_bottom_decision_with_duplicate_process_across_groups_denied(self):
        space = self.space_with_proposals({0: "a", 1: "b", 2: "c"})
        proof = frozenset(
            {("a", frozenset({0})), ("b", frozenset({0, 1})), ("c", frozenset({2}))}
        )
        assert not evaluate(
            self.policy, space, 3, "cas",
            template("DECISION", Formal("d"), ANY),
            entry("DECISION", BOTTOM, proof),
        )
