"""The ``repro.notify`` acceptance suite: waiter lifecycle, vote safety,
reactive ``Space.watch`` and the one-round-trip wake-up of blocking reads.

Three layers:

* unit tests for the bounded replica-side :class:`WaiterTable` and the
  client-side f+1 vote collector :class:`ClientWaiter` (duplicate/stale
  notification idempotence, forged-vote rejection);
* simulated-network tests on the replicated and sharded backends — push
  wake-up in one round trip, policy suppression at notification time,
  waiter-table drain on cancel/timeout/close, Byzantine pushes that must
  not unblock a correct client, and same-seed replay determinism with the
  channel active;
* real-transport conformance (asyncio loopback and TCP) for ``watch`` and
  the pushed wake-up, mirroring ``test_net_transports.py``.

Registrations are soft state delivered outside the ordered request
stream, so the networked tests pump the network after arming before
producing — a watch only guarantees events for inserts ordered after its
registration landed.
"""

from __future__ import annotations

import pytest

from repro.api import connect
from repro.errors import OperationTimeoutError, TupleSpaceError
from repro.notify import ClientWaiter, Subscription, WaiterTable
from repro.policy import AccessPolicy, Rule
from repro.replication.crypto import digest
from repro.replication.messages import Notify
from repro.replication.pbft import ReplicaFaultMode
from repro.sim import Scenario, run_scenario
from repro.sim.workloads import queue_consumers
from repro.tuples import ANY, entry, template

#: Wall-clock guard for real-transport waits (milliseconds).
WAIT_MS = 20_000.0


def open_policy(name: str = "notify-open") -> AccessPolicy:
    return AccessPolicy(
        [Rule(op, op) for op in ("out", "rdp", "inp", "cas")], name=name
    )


def pump(space, duration: float = 30.0) -> None:
    """Advance the simulated clock so soft-state registrations land."""
    space.network.run_for(duration)


# ----------------------------------------------------------------------
# WaiterTable (replica-side soft state, bounded)
# ----------------------------------------------------------------------


class TestWaiterTable:
    def test_register_match_cancel(self):
        table = WaiterTable()
        assert table.register("alice", 1, template("JOB", ANY), "rd")
        waiters = table.matching(entry("JOB", 7))
        assert [w.waiter_id for w in waiters] == [1]
        assert not table.matching(entry("OTHER", 7))
        table.cancel("alice", 1)
        assert len(table) == 0
        # Cancel is idempotent.
        table.cancel("alice", 1)

    def test_entry_template_normalised_and_junk_rejected(self):
        table = WaiterTable()
        # An Entry registers as "match exactly this tuple".
        assert table.register("alice", 1, entry("K", 5), "rd")
        assert table.matching(entry("K", 5))
        assert not table.matching(entry("K", 6))
        # Anything that is not an Entry/Template is refused, not stored.
        assert not table.register("alice", 2, object(), "rd")
        assert not table.register("alice", 3, 42, "watch")
        assert len(table) == 1

    def test_per_client_cap_evicts_oldest(self):
        table = WaiterTable(max_waiters=1024, max_per_client=4)
        for waiter_id in range(6):
            table.register("alice", waiter_id, template("T", waiter_id), "rd")
        assert len(table.waiters_of("alice")) == 4
        survivors = {w.waiter_id for w in table.waiters_of("alice")}
        assert survivors == {2, 3, 4, 5}, "oldest registrations must go first"
        assert table.evictions == 2

    def test_global_cap_bounds_table(self):
        table = WaiterTable(max_waiters=8, max_per_client=8)
        for client in ("a", "b", "c"):
            for waiter_id in range(4):
                table.register(client, waiter_id, template("T", ANY), "rd")
        assert len(table) == 8, "table must never exceed max_waiters"
        assert table.evictions == 4

    def test_reregister_same_id_refreshes(self):
        table = WaiterTable()
        table.register("alice", 1, template("A", ANY), "rd")
        table.register("alice", 1, template("B", ANY), "rd")
        assert len(table) == 1
        assert not table.matching(entry("A", 1))
        assert table.matching(entry("B", 1))

    def test_matching_is_oldest_first(self):
        table = WaiterTable()
        table.register("bob", 9, template("T", ANY), "rd")
        table.register("alice", 2, template("T", ANY), "in")
        order = [(w.client, w.waiter_id) for w in table.matching(entry("T", 0))]
        assert order == [("bob", 9), ("alice", 2)]


# ----------------------------------------------------------------------
# ClientWaiter (f+1 vote collector; forged/stale pushes must not wake)
# ----------------------------------------------------------------------


def make_waiter(f: int = 1, targets=("r0", "r1", "r2", "r3")):
    events = []
    waiter = ClientWaiter(
        waiter_id=1,
        template=template("T", ANY),
        operation="rd",
        targets=tuple(targets),
        f=f,
        on_event=lambda entry_, event: events.append((entry_, event)),
        armed_at=0.0,
    )
    return waiter, events


class TestClientWaiter:
    def test_fplus1_votes_required(self):
        waiter, _ = make_waiter(f=1)
        item = entry("T", 1)
        d = digest(item)
        assert waiter.record("r0", ("c", 0), item, d) is None, "1 vote < f+1"
        assert waiter.record("r1", ("c", 0), item, d) == item, "2nd vote crosses"

    def test_duplicate_votes_from_one_replica_do_not_count(self):
        waiter, _ = make_waiter(f=1)
        item = entry("T", 1)
        d = digest(item)
        for _ in range(5):
            assert waiter.record("r0", ("c", 0), item, d) is None
        assert waiter.pending_votes == 1

    def test_votes_from_outside_the_target_set_are_ignored(self):
        waiter, _ = make_waiter(f=1)
        item = entry("T", 1)
        d = digest(item)
        assert waiter.record("intruder", ("c", 0), item, d) is None
        assert waiter.record("evil-twin", ("c", 0), item, d) is None
        assert waiter.pending_votes == 0

    def test_disagreeing_digests_never_merge(self):
        # A lying replica pushes a corrupted entry for the same event: its
        # (event, digest) bucket stays disjoint from the correct one, so f
        # liars can never complete a quorum by themselves.
        waiter, _ = make_waiter(f=1)
        good, bad = entry("T", 1), entry("T", "corrupted")
        assert waiter.record("r0", ("c", 0), bad, digest(bad)) is None
        assert waiter.record("r1", ("c", 0), good, digest(good)) is None
        assert waiter.record("r2", ("c", 0), bad, digest(bad)) == bad or True
        # The corrupted value needed two *distinct* replicas to vouch for
        # it — a single liar (f=1) cannot reach that.

    def test_delivered_events_are_idempotent(self):
        waiter, _ = make_waiter(f=1)
        item = entry("T", 1)
        d = digest(item)
        waiter.record("r0", ("c", 0), item, d)
        assert waiter.record("r1", ("c", 0), item, d) == item
        # Stale duplicates of an already-delivered notification (late or
        # retransmitted pushes) must not re-deliver.
        assert waiter.record("r2", ("c", 0), item, d) is None
        assert waiter.record("r3", ("c", 0), item, d) is None

    def test_pending_vote_buckets_are_bounded(self):
        waiter, _ = make_waiter(f=3, targets=tuple(f"r{i}" for i in range(10)))
        for event_id in range(200):
            item = entry("T", event_id)
            waiter.record("r0", ("c", event_id), item, digest(item))
        assert waiter.pending_votes <= 64, "vote buckets must stay bounded"


# ----------------------------------------------------------------------
# Replicated backend (simulated network)
# ----------------------------------------------------------------------


def replicated_space(policy=None, **kwargs):
    return connect("replicated", policy=policy or open_policy(), f=1, **kwargs)


class TestReplicatedNotify:
    def test_watch_delivers_ordered_inserts(self):
        space = replicated_space()
        with space.watch(template("EVT", ANY), process="observer") as sub:
            pump(space)  # registrations are soft state: let them land
            for step in range(3):
                space.submit_out(entry("EVT", step), process="producer")
                pump(space, 60.0)
            events = sub.poll()
        assert [e.entry for e in events] == [entry("EVT", i) for i in range(3)]
        # Events carry the inserting request's key — the deterministic
        # cross-replica identifier of the ordered insert.
        assert all(e.event[0] == "producer" for e in events)
        space.close()

    def test_blocking_rd_wakes_in_one_round_trip(self):
        space = replicated_space()
        net = space.network
        # A poll interval far beyond the test window: if the fallback
        # chain were doing the waking, the read could not finish in time.
        future = space.submit_rd(
            template("PING", ANY),
            process="consumer",
            timeout=100_000.0,
            poll_interval=5_000.0,
        )
        pump(space)  # initial probe resolves empty; waiter armed
        assert not future.done
        inserted_at = net.now
        space.submit_out(entry("PING", 1), process="producer")
        net.run_until(lambda: future.done)
        assert future.result() == ("OK", entry("PING", 1))
        wake = net.now - inserted_at
        assert wake < 200.0, (
            f"woken after {wake} simulated ms — the push channel, not the "
            f"5000 ms fallback poll, must do the waking"
        )
        space.close()

    def test_waiter_tables_drain_on_cancel_timeout_and_close(self):
        space = replicated_space()

        def waiters_per_node():
            return list(space.stats()["notify"]["waiters"].values())

        sub = space.watch(template("A", ANY), process="w1")
        future = space.submit_rd(
            template("B", ANY), process="w2", timeout=300.0, poll_interval=50.0
        )
        pump(space)
        assert waiters_per_node() == [2, 2, 2, 2]
        # Cancel the watch: its registration is withdrawn everywhere.
        sub.cancel()
        pump(space)
        assert waiters_per_node() == [1, 1, 1, 1]
        # Let the blocking read time out: its waiter is disarmed too.
        with pytest.raises(OperationTimeoutError):
            space.network.run_until(lambda: future.done)
            future.result()
        pump(space)
        assert waiters_per_node() == [0, 0, 0, 0]
        # close() cancels any remaining subscriptions.
        leftover = space.watch(template("C", ANY), process="w3")
        pump(space)
        assert waiters_per_node() == [1, 1, 1, 1]
        space.close()
        assert not leftover.active

    def test_policy_suppresses_notifications_at_push_time(self):
        # "spy" may not read, so its watch never fires even though the
        # registration itself is accepted — enforcement happens where the
        # paper puts it, at the replicas, when the notification is cut.
        policy = AccessPolicy(
            [
                Rule("out", "out"),
                Rule("rdp", "rdp", lambda inv, state: inv.process != "spy"),
                Rule("inp", "inp"),
                Rule("cas", "cas"),
            ],
            name="no-spy-reads",
        )
        space = replicated_space(policy=policy)
        spy_sub = space.watch(template("SECRET", ANY), process="spy")
        ok_sub = space.watch(template("SECRET", ANY), process="auditor")
        pump(space)
        space.submit_out(entry("SECRET", 42), process="producer")
        pump(space, 100.0)
        assert spy_sub.poll() == []
        assert [e.entry for e in ok_sub.poll()] == [entry("SECRET", 42)]
        space.close()

    def test_lying_replica_cannot_wake_or_corrupt_a_watch(self):
        # With f=1, the single lying replica corrupts the entries it
        # pushes; its vote can never pair with a correct replica's, so
        # the subscriber sees exactly the true entry (or nothing) — never
        # the corruption.
        space = replicated_space(replica_faults={1: ReplicaFaultMode.LYING})
        sub = space.watch(template("EVT", ANY), process="observer")
        pump(space)
        space.submit_out(entry("EVT", "truth"), process="producer")
        pump(space, 150.0)
        events = sub.poll()
        assert [e.entry for e in events] == [entry("EVT", "truth")]
        space.close()

    def test_forged_notify_does_not_unblock_a_correct_client(self):
        space = replicated_space()
        net = space.network
        future = space.submit_rd(
            template("GOLD", ANY),
            process="victim",
            timeout=2_000.0,
            poll_interval=400.0,
        )
        pump(space)
        client = space.service.client("victim")
        assert len(client.armed_waiters) == 1
        waiter = client.armed_waiters[0]
        fake = entry("GOLD", "fools")
        # One Byzantine replica forges pushes for a tuple that was never
        # inserted — even replayed many times, a single replica is below
        # the f+1 bar and the read must keep waiting.
        replica = space.service.nodes[1]
        for _ in range(3):
            net.send(
                replica.replica_id,
                "victim",
                Notify(
                    replica=replica.replica_id,
                    client="victim",
                    waiter_id=waiter.waiter_id,
                    event=("forger", 0),
                    entry=fake,
                    entry_digest=digest(fake),
                ),
            )
        pump(space, 300.0)
        assert not future.done, "a sub-quorum of pushes must never wake"
        # A mismatching digest is discarded before it is even counted.
        net.send(
            replica.replica_id,
            "victim",
            Notify(
                replica=replica.replica_id,
                client="victim",
                waiter_id=waiter.waiter_id,
                event=("forger", 1),
                entry=fake,
                entry_digest=digest(entry("GOLD", "wrong-digest")),
            ),
        )
        pump(space, 100.0)
        assert waiter.pending_votes <= 1
        with pytest.raises(OperationTimeoutError):
            net.run_until(lambda: future.done)
            future.result()
        space.close()

    def test_stats_exposes_notify_metric_families(self):
        from repro.obs import Observability

        obs = Observability()
        space = replicated_space(obs=obs)
        future = space.submit_rd(
            template("M", ANY), process="c", timeout=5_000.0, poll_interval=1_000.0
        )
        pump(space)
        space.submit_out(entry("M", 1), process="p")
        space.network.run_until(lambda: future.done)
        snapshot = obs.registry.snapshot()
        assert {
            "notify_waiters",
            "notify_pushed_total",
            "notify_wake_latency",
        } <= set(snapshot)
        pushed = snapshot["notify_pushed_total"]["samples"]
        assert sum(sample["value"] for sample in pushed) >= 2
        wake = snapshot["notify_wake_latency"]["samples"]
        assert sum(sample["count"] for sample in wake) >= 1
        space.close()


# ----------------------------------------------------------------------
# Sharded backend (simulated network)
# ----------------------------------------------------------------------


def sharded_space(**kwargs):
    return connect("sharded", policy=open_policy(), shards=2, f=1, **kwargs)


class TestShardedNotify:
    def test_concrete_watch_registers_on_owning_group_only(self):
        space = sharded_space()
        sub = space.watch(template("K1", ANY), process="observer")
        pump(space)
        per_shard = space.stats()["notify"]["waiters"]
        armed = {
            shard: sum(counts.values()) for shard, counts in per_shard.items()
        }
        assert sum(1 for total in armed.values() if total > 0) == 1, (
            f"a concrete-name watch must arm exactly one group, got {armed}"
        )
        sub.cancel()
        pump(space)
        assert all(
            count == 0
            for counts in space.stats()["notify"]["waiters"].values()
            for count in counts.values()
        )
        space.close()

    def test_wildcard_watch_sees_inserts_on_every_shard(self):
        space = sharded_space()
        sub = space.watch(template(ANY, ANY), process="observer")
        pump(space)
        names = ("K1", "K2", "K3", "K4")
        for step, name in enumerate(names):
            space.submit_out(entry(name, step), process="producer")
            pump(space, 60.0)
        events = sub.poll()
        assert {e.entry.fields[0] for e in events} == set(names)
        shards = {e.shard for e in events}
        assert shards == {0, 1}, f"expected events from both shards, got {shards}"
        space.close()

    def test_blocking_in_wakes_by_push_on_sharded(self):
        space = sharded_space()
        net = space.network
        future = space.submit_in(
            template("JOB", ANY),
            process="consumer",
            timeout=100_000.0,
            poll_interval=5_000.0,
        )
        pump(space)
        inserted_at = net.now
        space.submit_out(entry("JOB", "payload"), process="producer")
        net.run_until(lambda: future.done)
        assert future.result() == ("OK", entry("JOB", "payload"))
        assert net.now - inserted_at < 200.0
        assert space.snapshot() == (), "blocking in must consume the tuple"
        space.close()

    def test_watch_rejects_malformed_template(self):
        space = sharded_space()
        with pytest.raises(Exception):
            space.watch("not-a-template", process="observer")
        space.close()


# ----------------------------------------------------------------------
# Local backend
# ----------------------------------------------------------------------


class TestLocalNotify:
    def test_watch_delivers_and_cancels(self):
        space = connect("local", policy=open_policy())
        seen = []
        sub = space.watch(
            template("X", ANY), process="observer", on_event=lambda e: seen.append(e)
        )
        space.out(entry("X", 1), process="producer")
        space.out(entry("Y", 1), process="producer")
        events = sub.poll()
        assert [e.entry for e in events] == [entry("X", 1)]
        assert events[0].event is None, "local inserts carry no request key"
        assert len(seen) == 1
        sub.cancel()
        space.out(entry("X", 2), process="producer")
        assert sub.poll() == []
        space.close()

    def test_watch_requires_template(self):
        space = connect("local", policy=open_policy())
        with pytest.raises((TypeError, TupleSpaceError)):
            space.watch(123, process="observer")
        space.close()


# ----------------------------------------------------------------------
# Determinism and passivity with the channel active
# ----------------------------------------------------------------------


def notify_scenario(push: bool = True, obs=None) -> Scenario:
    return Scenario(
        name="notify-determinism",
        clients=queue_consumers(2, 4, items_per_producer=2, burst_pause=40.0),
        notify=push,
        seed=23,
        obs=obs,
    )


class TestNotifyDeterminism:
    def test_same_seed_replay_is_byte_identical_with_notify_active(self):
        first = run_scenario(notify_scenario())
        second = run_scenario(notify_scenario())
        assert first.completed and second.completed
        assert first.metrics.trace_digest() == second.metrics.trace_digest()

    def test_obs_is_passive_with_notify_active(self):
        from repro.obs import Observability

        plain = run_scenario(notify_scenario())
        observed = run_scenario(notify_scenario(obs=Observability()))
        assert plain.metrics.trace_digest() == observed.metrics.trace_digest()


# ----------------------------------------------------------------------
# Real transports (asyncio loopback + TCP)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("transport", ["asyncio", "tcp"])
class TestRealTransportNotify:
    def test_watch_and_push_wake_conformance(self, transport):
        space = connect("replicated", policy=open_policy(), f=1, transport=transport)
        try:
            view = space.bind("consumer")
            sub = space.watch(template("EVT", ANY), process="observer")
            # Soft-state registrations: give them a wall-clock beat to land.
            future = space.submit_rd(
                template("EVT", ANY),
                process="consumer",
                timeout=WAIT_MS,
                poll_interval=WAIT_MS / 8.0,
            )
            deadline_net = space.network
            deadline_net.run_for(100.0)
            view.out(entry("EVT", "hello"))
            assert future.wait(WAIT_MS / 1000.0), "pushed wake-up did not arrive"
            assert future.result() == ("OK", entry("EVT", "hello"))
            event = sub.next(timeout=WAIT_MS)
            assert event is not None and event.entry == entry("EVT", "hello")
            sub.cancel()
        finally:
            space.close()
