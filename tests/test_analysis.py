"""Tests for metrics, resilience sweeps and report formatting."""

from repro.analysis import (
    consensus_operation_counts,
    format_table,
    peats_stored_bits,
    space_tuple_census,
    sweep_strong_consensus_resilience,
)
from repro.analysis.resilience import worst_case_proposals
from repro.consensus import StrongConsensus, WeakConsensus, run_consensus
from repro.peo import PEATS
from repro.policy import strong_consensus_policy, weak_consensus_policy
from repro.tspace.history import HistoryRecorder
from repro.tuples import entry


class TestMetrics:
    def test_space_tuple_census(self):
        consensus = StrongConsensus(range(4), 1)
        run_consensus(consensus, {p: 1 for p in range(4)})
        census = space_tuple_census(consensus.space)
        assert census == {"PROPOSE": 4, "DECISION": 1}

    def test_peats_stored_bits_with_and_without_domain(self):
        space = PEATS(strong_consensus_policy(range(4), 1))
        space.out(entry("PROPOSE", 0, 1), process=0)
        natural = peats_stored_bits(space)
        with_domain = peats_stored_bits(space, process_count=4)
        assert natural > 0
        assert with_domain > 0
        # With domain accounting, the process-id field costs ceil(log2 4) = 2
        # bits and the value field (1 < 4, also looks like an id) 2 bits.
        assert with_domain == 8 * len("PROPOSE") + 2 + 2

    def test_operation_counts(self):
        history = HistoryRecorder()
        space = PEATS(weak_consensus_policy(), history=history)
        consensus = WeakConsensus(space)
        for pid in range(3):
            consensus.propose(pid, pid)
        summary = consensus_operation_counts(history)
        assert summary["total_operations"] == 3
        assert summary["by_kind"] == {"cas": 3}
        assert summary["mean_per_process"] == 1.0
        assert summary["denied"] == 0


class TestResilienceSweep:
    def test_termination_follows_the_theorem_4_bound(self):
        results = sweep_strong_consensus_resilience(
            [(4, 1, 2), (3, 1, 2), (7, 2, 2), (6, 2, 2), (7, 2, 3), (10, 3, 2)],
            max_rounds=150,
        )
        for result in results:
            assert result.terminated == result.meets_bound
            assert result.agreement
            assert result.strong_validity

    def test_worst_case_proposals_never_exceed_t_per_value_below_bound(self):
        processes = tuple(range(6))
        proposals = worst_case_proposals(processes, 2, (0, 1))
        counts = {}
        for value in proposals.values():
            counts[value] = counts.get(value, 0) + 1
        assert all(count <= 2 for count in counts.values())
        assert len(proposals) == 4  # the last t processes stay silent

    def test_worst_case_proposals_above_bound_reach_quorum(self):
        processes = tuple(range(7))
        proposals = worst_case_proposals(processes, 2, (0, 1))
        counts = {}
        for value in proposals.values():
            counts[value] = counts.get(value, 0) + 1
        assert max(counts.values()) >= 3  # t + 1


class TestReporting:
    def test_format_table_renders_columns(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "a" in text.splitlines()[1]
        assert "2.500" in text
        assert "10" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="demo")

    def test_format_table_respects_column_order(self):
        rows = [{"x": 1, "y": 2}]
        text = format_table(rows, columns=["y", "x"])
        header = text.splitlines()[0]
        assert header.index("y") < header.index("x")
