"""Property-based tests for the universal constructions (hypothesis).

The key invariants come from Lemmas 1 and 3 (the SEQ list is contiguous and
duplicate-free) and Theorems 6 and 7 (the emulation follows the sequential
specification of the object type): for random interleavings of random
operation batches, every handle's local state must equal the state obtained
by replaying the threaded invocation list sequentially.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.universal import LockFreeUniversalConstruction, WaitFreeUniversalConstruction
from repro.universal.emulated import counter_type, fifo_queue_type, kv_store_type

# A batch is a list of (process_index, operation, args) triples.
counter_ops = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.sampled_from(["increment", "read"]),
)
queue_ops = st.one_of(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.just("enqueue"),
        st.integers(min_value=0, max_value=9),
    ),
    st.tuples(st.integers(min_value=0, max_value=2), st.just("dequeue")),
)
kv_ops = st.one_of(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.just("put"),
        st.sampled_from(["x", "y"]),
        st.integers(min_value=0, max_value=5),
    ),
    st.tuples(st.integers(min_value=0, max_value=2), st.just("get"), st.sampled_from(["x", "y"])),
)


def apply_batch(handles, batch):
    for step in batch:
        index, operation, *args = step
        handles[index % len(handles)].invoke(operation, *args)


def final_states(construction, handles):
    replayed_state, _ = construction.object_type.run_sequentially(
        construction.threaded_invocations()
    )
    handle_states = {handle.refresh() for handle in handles}
    return replayed_state, handle_states


@settings(max_examples=25, deadline=None)
@given(batch=st.lists(counter_ops, min_size=1, max_size=20))
def test_lockfree_counter_matches_sequential_replay(batch):
    construction = LockFreeUniversalConstruction(counter_type())
    handles = [construction.handle(f"p{i}") for i in range(3)]
    apply_batch(handles, batch)
    replayed, states = final_states(construction, handles)
    assert states == {replayed}


@settings(max_examples=25, deadline=None)
@given(batch=st.lists(queue_ops, min_size=1, max_size=20))
def test_lockfree_queue_matches_sequential_replay(batch):
    construction = LockFreeUniversalConstruction(fifo_queue_type())
    handles = [construction.handle(f"p{i}") for i in range(3)]
    apply_batch(handles, batch)
    replayed, states = final_states(construction, handles)
    assert states == {replayed}


@settings(max_examples=25, deadline=None)
@given(batch=st.lists(kv_ops, min_size=1, max_size=20))
def test_waitfree_kv_store_matches_sequential_replay(batch):
    processes = ["a", "b", "c"]
    construction = WaitFreeUniversalConstruction(kv_store_type(), processes)
    handles = [construction.handle(p) for p in processes]
    apply_batch(handles, batch)
    replayed, states = final_states(construction, handles)
    assert states == {replayed}


@settings(max_examples=25, deadline=None)
@given(batch=st.lists(counter_ops, min_size=1, max_size=20))
def test_waitfree_positions_are_contiguous_and_unique(batch):
    processes = ["a", "b", "c"]
    construction = WaitFreeUniversalConstruction(counter_type(), processes)
    handles = [construction.handle(p) for p in processes]
    apply_batch(handles, batch)
    positions = sorted(
        stored.fields[1]
        for stored in construction.space.snapshot()
        if stored.fields[0] == "SEQ"
    )
    assert positions == list(range(1, len(positions) + 1))
    assert len(positions) == len(batch)


@settings(max_examples=25, deadline=None)
@given(batch=st.lists(counter_ops, min_size=1, max_size=15))
def test_lockfree_threaded_invocations_are_unique(batch):
    construction = LockFreeUniversalConstruction(counter_type())
    handles = [construction.handle(f"p{i}") for i in range(3)]
    apply_batch(handles, batch)
    threaded = construction.threaded_invocations()
    assert len(threaded) == len(set(threaded)) == len(batch)
