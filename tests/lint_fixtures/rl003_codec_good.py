# repro-lint: role=codec
"""RL003 negative fixture: registry and message set agree."""


class Ping:
    pass


class Pong:
    pass


MESSAGE_CLASSES = {
    "Ping": Ping,
    "Pong": Pong,
}
