# repro-lint: scope=RL005
"""RL005 pragma fixture: a justified raw invocation."""


def dispatch(handler, message):
    handler(message)  # repro-lint: disable=RL005
