# repro-lint: scope=RL001
"""RL001 negative fixture: seeded RNG and injected clocks are allowed."""

import random


def seeded(seed):
    return random.Random(seed).random()


def timestamp(clock):
    # Time comes from the transport's clock, never the wall.
    return clock.now()
