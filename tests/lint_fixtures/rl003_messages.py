# repro-lint: role=messages
"""RL003 fixture: the message-dataclass side of the codec diff."""

import dataclasses


@dataclasses.dataclass(frozen=True)
class Ping:
    nonce: int


@dataclasses.dataclass(frozen=True)
class Pong:
    nonce: int


class _Internal:
    """Not a dataclass, not public: never part of the wire contract."""
