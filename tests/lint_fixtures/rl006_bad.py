# repro-lint: scope=RL006
"""RL006 positive fixture: per-request bookkeeping with no pruning site."""


class Tracker:
    def __init__(self):
        self._pending = {}
        self._log = []

    def start(self, request_id, state):
        self._pending[request_id] = state

    def journal(self, line):
        self._log.append(line)
