# repro-lint: scope=RL001
"""RL001 pragma fixture: both suppression styles."""

import time


def inline_suppressed():
    return time.time()  # repro-lint: disable=RL001


def standalone_suppressed():
    # repro-lint: disable=RL001 — justified here: fixture exercises the
    # standalone pragma applying to the next code line.
    return time.monotonic()
