# repro-lint: scope=RL005
"""RL005 negative fixture: both containment idioms."""


def contained(handler, message, errors):
    try:
        handler(message)
    except Exception:
        errors.inc()


def deferred(self_guarded, handler, message):
    # The callable is an argument of a *_guarded(...) call: contained.
    self_guarded(lambda: handler(message))
