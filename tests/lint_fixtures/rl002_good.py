# repro-lint: scope=RL002
"""RL002 negative fixture: every hot-path call behind an .enabled guard."""


class Node:
    def __init__(self, tracer):
        self._tracer = tracer

    def handle(self, key):
        if self._tracer.enabled:
            self._tracer.record("op", key, "node", 0.0)

    def flush(self):
        if self._tracer.enabled:
            self._trace_flush()

    def _trace_flush(self):
        self._tracer.record("flush", None, "node", 0.0)
