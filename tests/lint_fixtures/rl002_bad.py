# repro-lint: scope=RL002
"""RL002 positive fixture: unguarded tracer call sites."""


class Node:
    def __init__(self, tracer):
        self._tracer = tracer

    def handle(self, key):
        self._tracer.record("op", key, "node", 0.0)

    def flush(self):
        self._trace_flush()

    def _trace_flush(self):
        # Exempt: inside a _trace* helper the guard lives at call sites.
        self._tracer.record("flush", None, "node", 0.0)
