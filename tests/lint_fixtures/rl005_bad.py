# repro-lint: scope=RL005
"""RL005 positive fixture: a raw handler invocation on the reactor path."""


def dispatch(handler, message):
    handler(message)
