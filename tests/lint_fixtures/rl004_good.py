# repro-lint: scope=RL004
"""RL004 negative fixture: literal snake_case names, one kind each."""


def instrument(registry):
    registry.counter("requests_total")
    registry.counter("requests_total")
    registry.histogram("request_latency_ms")
    registry.gauge("queue_depth")
