# repro-lint: scope=RL002
"""RL002 pragma fixture: an intentionally unguarded call, justified."""


class Node:
    def __init__(self, tracer):
        self._tracer = tracer

    def handle(self, key):
        self._tracer.record("op", key, "node", 0.0)  # repro-lint: disable=RL002
