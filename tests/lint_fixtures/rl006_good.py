# repro-lint: scope=RL006
"""RL006 negative fixture: every growth has a pruning counterpart."""


class Tracker:
    def __init__(self):
        self._pending = {}
        self._log = []
        self._nodes = []
        for index in range(4):
            # Growth inside __init__ is bounded by construction inputs.
            self._nodes.append(index)

    def start(self, request_id, state):
        self._pending[request_id] = state

    def finish(self, request_id):
        return self._pending.pop(request_id, None)

    def journal(self, line):
        self._log.append(line)

    def rotate(self):
        # Swap-and-drain reassignment counts as pruning.
        drained, self._log = self._log, []
        return drained
