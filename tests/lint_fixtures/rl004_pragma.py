# repro-lint: scope=RL004
"""RL004 pragma fixture: a justified dynamic family name."""


def instrument(registry, shard):
    # repro-lint: disable=RL004 — per-shard family name, validated upstream.
    registry.counter(f"shard_{shard}_requests_total")
