# repro-lint: role=messages
"""RL003 fixture: the transaction sub-protocol message set."""

import dataclasses


@dataclasses.dataclass(frozen=True)
class TxnPrepare:
    replica: str
    txn_id: tuple
    participants: tuple


@dataclasses.dataclass(frozen=True)
class TxnVote:
    replica: str
    txn_id: tuple
    shard: int
    vote: str


@dataclasses.dataclass(frozen=True)
class TxnDecision:
    replica: str
    txn_id: tuple
    outcome: str


@dataclasses.dataclass(frozen=True)
class TxnAck:
    replica: str
    txn_id: tuple
    shard: int
