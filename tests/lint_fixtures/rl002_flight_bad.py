# repro-lint: scope=RL002
"""RL002 positive fixture: unguarded flight-recorder call sites."""


class Node:
    def __init__(self, flight):
        self._flight = flight

    def handle(self, payload):
        self._flight.record("msg-recv", "node", 0.0, type=type(payload).__name__)

    def checkpoint(self):
        self._flight_note()

    def _flight_note(self):
        # Exempt: inside a _flight* helper the guard lives at call sites.
        self._flight.record("checkpoint-vote", "node", 0.0)
