# repro-lint: scope=RL004
"""RL004 positive fixture: dynamic name, bad name, kind conflict, near miss."""


def instrument(registry, dynamic_name):
    registry.counter(dynamic_name)
    registry.counter("Bad-Name")
    registry.counter("requests_total")
    registry.gauge("requests_total")
    registry.counter("request_total")
