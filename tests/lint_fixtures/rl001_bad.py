# repro-lint: scope=RL001
"""RL001 positive fixture: six distinct ambience leaks."""

import random
import threading
import time
import uuid


def now():
    return time.time()


def jitter():
    return random.random()


def spawn(fn):
    return threading.Thread(target=fn)


def token():
    return uuid.uuid4()


def unseeded():
    return random.Random()


def leaked_reference():
    # Not a call: passing the clock around leaks the same ambience.
    return time.monotonic
