# repro-lint: scope=RL006
"""RL006 pragma fixture: growth keyed by a deployment-bounded id."""


class Tracker:
    def __init__(self):
        self._per_node = {}

    def observe(self, node_id, sample):
        # repro-lint: disable=RL006 — keyed by node id, bounded by the
        # deployment shape (fixture for the multi-line justification form).
        self._per_node[node_id] = sample
