# repro-lint: role=codec
"""RL003 positive fixture: the push message ``Notify`` never got a wire
tag — the exact regression the notify-channel PR guards against (the
registrations round-trip but every push is undecodable)."""


class RegisterWaiter:
    pass


class CancelWaiter:
    pass


MESSAGE_CLASSES = {
    "RegisterWaiter": RegisterWaiter,
    "CancelWaiter": CancelWaiter,
}
