# repro-lint: scope=RL002
"""RL002 negative fixture: flight hot-path calls behind .enabled guards."""


class Node:
    def __init__(self, flight):
        self._flight = flight

    def handle(self, payload):
        if self._flight.enabled:
            self._flight.record("msg-recv", "node", 0.0, type=type(payload).__name__)

    def checkpoint(self):
        if self._flight.enabled:
            self._flight_note()

    def _flight_note(self):
        self._flight.record("checkpoint-vote", "node", 0.0)
