# repro-lint: role=messages
"""RL003 fixture: the notify-channel message set (push-channel shape)."""

import dataclasses


@dataclasses.dataclass(frozen=True)
class RegisterWaiter:
    client: str
    waiter_id: int


@dataclasses.dataclass(frozen=True)
class CancelWaiter:
    client: str
    waiter_id: int


@dataclasses.dataclass(frozen=True)
class Notify:
    replica: str
    client: str
    waiter_id: int
