# repro-lint: role=codec
"""RL003 positive fixture: the transaction message set loses its apply
acknowledgement on the wire — ``TxnAck`` never got a tag, so a TCP
coordinator can decide but never learn the decision was applied."""


class TxnPrepare:
    pass


class TxnVote:
    pass


class TxnDecision:
    pass


MESSAGE_CLASSES = {
    "TxnPrepare": TxnPrepare,
    "TxnVote": TxnVote,
    "TxnDecision": TxnDecision,
}
