# repro-lint: role=codec
"""RL003 positive fixture: Pong unregistered, Stale registered but gone."""


class Ping:
    pass


class Stale:
    pass


MESSAGE_CLASSES = {
    "Ping": Ping,
    "Stale": Stale,
}
