"""Workload invariants and fault-schedule behaviour under the scenario engine."""

import dataclasses

import pytest

from repro.replication.pbft import ReplicaFaultMode
from repro.sim import (
    CrashWindow,
    FaultModeWindow,
    PartitionWindow,
    Scenario,
    ViewChangeStorm,
    run_scenario,
)
from repro.sim.workloads import (
    barrier_rendezvous,
    consensus_storm,
    kv_readwrite,
    lock_contention,
    queue_producer_consumer,
)


def names_in(snapshot, name):
    return [stored for stored in snapshot if stored.fields[0] == name]


class TestWorkloads:
    def test_consensus_storm_agrees_on_one_value(self):
        result = run_scenario(Scenario(name="storm", clients=consensus_storm(12)))
        assert result.completed
        decisions = set(result.client_results().values())
        assert len(decisions) == 1
        assert len(names_in(result.service.snapshot(), "DECISION")) == 1

    def test_lock_contention_preserves_mutual_exclusion_accounting(self):
        n, rounds = 6, 2
        result = run_scenario(
            Scenario(name="lock", clients=lock_contention(n, rounds=rounds))
        )
        assert result.completed
        snapshot = result.service.snapshot()
        # Every worker completed every round, and the token was returned.
        assert len(names_in(snapshot, "HELD")) == n * rounds
        assert len(names_in(snapshot, "LOCK")) == 1
        workers = {k: v for k, v in result.client_results().items() if k.startswith("worker")}
        assert all(value == ("done", rounds) for value in workers.values())

    def test_barrier_rendezvous_everyone_sees_everyone(self):
        n = 5
        result = run_scenario(Scenario(name="barrier", clients=barrier_rendezvous(n)))
        assert result.completed
        assert all(value == ("through", n) for value in result.client_results().values())

    def test_kv_readwrite_all_operations_complete(self):
        n, ops = 10, 6
        result = run_scenario(
            Scenario(name="kv", clients=kv_readwrite(n, ops_per_client=ops, seed=5))
        )
        assert result.completed
        assert result.metrics.operations_completed == n * ops
        reads = sum(v[1] for v in result.client_results().values())
        writes = sum(v[2] for v in result.client_results().values())
        assert reads + writes == n * ops
        assert len(names_in(result.service.snapshot(), "KV")) == writes

    def test_queue_conserves_jobs(self):
        producers, consumers, items = 4, 3, 5
        result = run_scenario(
            Scenario(
                name="queue",
                clients=queue_producer_consumer(
                    producers, consumers, items_per_producer=items
                ),
            )
        )
        assert result.completed
        consumed = sum(
            value[1]
            for process, value in result.client_results().items()
            if str(process).startswith("cons")
        )
        assert consumed == producers * items
        assert not names_in(result.service.snapshot(), "JOB")


class TestFaultSchedules:
    def test_partition_window_drops_traffic_then_heals(self):
        # The window must close while clients are still running: the engine
        # stops pumping once every program finished, so a heal scheduled
        # after the last completion would never make it into the trace.
        scenario = Scenario(
            name="partition",
            clients=kv_readwrite(8, ops_per_client=4),
            faults=(PartitionWindow(5.0, 15.0, left=[2], right=[3]),),
        )
        result = run_scenario(scenario)
        assert result.completed
        stats = result.service.network.statistics
        assert stats["dropped"] > 0
        assert "partition" in result.metrics.trace_text()
        assert "heal" in result.metrics.trace_text()

    def test_crashed_primary_recovers_liveness_through_view_change(self):
        result = run_scenario(
            Scenario(
                name="crash",
                clients=consensus_storm(8),
                faults=(CrashWindow(0, 2.0, 500.0),),
                view_change_timeout=40.0,
            )
        )
        assert result.completed
        assert all(node.view >= 1 for node in result.service.correct_nodes())

    def test_lying_replica_window_is_outvoted(self):
        result = run_scenario(
            Scenario(
                name="lying",
                clients=kv_readwrite(8, ops_per_client=4),
                faults=(FaultModeWindow(1, ReplicaFaultMode.LYING, 0.0, 200.0),),
            )
        )
        assert result.completed
        assert result.metrics.failures == 0

    def test_storm_during_partition_escalates_past_unreachable_primary(self):
        """Regression: a view change whose designated primary is partitioned
        away used to wedge the replicas in ``_view_changing`` forever,
        starving every later request.  The escalation path (re-vote for the
        next view after another timeout) must rotate past it."""
        result = run_scenario(
            Scenario(
                name="harsh",
                clients=queue_producer_consumer(5, 5, items_per_producer=4),
                faults=(
                    PartitionWindow(5.0, 90.0, left=[2], right=[3]),
                    ViewChangeStorm(8.0, rounds=5, gap=15.0),
                ),
                seed=77,
            )
        )
        assert result.completed
        assert result.metrics.failures == 0
        consumed = sum(
            value[1]
            for process, value in result.client_results().items()
            if str(process).startswith("cons")
        )
        assert consumed == 20

    def test_view_change_storm_advances_views_without_losing_operations(self):
        result = run_scenario(
            Scenario(
                name="vcs",
                clients=queue_producer_consumer(3, 3, items_per_producer=2),
                faults=(ViewChangeStorm(10.0, rounds=3, gap=30.0),),
            )
        )
        assert result.completed
        assert all(node.view >= 1 for node in result.service.correct_nodes())
        consumed = sum(
            value[1]
            for process, value in result.client_results().items()
            if str(process).startswith("cons")
        )
        assert consumed == 6


class TestAcceptanceScenario:
    """The ISSUE acceptance bar: 32 concurrent clients, f=1, faults, replay."""

    @staticmethod
    def acceptance_scenario(seed=11):
        return Scenario(
            name="open-system-storm",
            clients=kv_readwrite(32, ops_per_client=6, seed=3),
            faults=(PartitionWindow(30.0, 120.0, left=[2], right=[3]),),
            replica_faults={1: ReplicaFaultMode.LYING},
            seed=seed,
        )

    def test_32_clients_with_faults_complete_all_operations(self):
        result = run_scenario(self.acceptance_scenario())
        assert len(result.engine.runners) == 32
        assert result.completed
        assert result.metrics.operations_completed == 32 * 6
        assert result.metrics.failures == 0
        # Correct replicas stayed in agreement despite the liar + partition.
        digests = result.service.replica_state_digests()
        correct = [
            digests[node.replica_id] for node in result.service.correct_nodes()
            if node.last_executed == max(n.last_executed for n in result.service.correct_nodes())
        ]
        assert len(set(correct)) == 1

    def test_acceptance_scenario_replays_byte_identically(self):
        first = run_scenario(self.acceptance_scenario())
        second = run_scenario(self.acceptance_scenario())
        assert first.metrics.trace_text() == second.metrics.trace_text()
        assert first.metrics.trace_digest() == second.metrics.trace_digest()

    def test_different_seed_changes_the_interleaving(self):
        first = run_scenario(self.acceptance_scenario(seed=11))
        other = run_scenario(self.acceptance_scenario(seed=12))
        assert first.metrics.trace_text() != other.metrics.trace_text()
