"""Unit tests for the augmented tuple space (the cas operation)."""

import pytest

from repro.errors import TupleSpaceError
from repro.tspace import AugmentedTupleSpace
from repro.tuples import ANY, Formal, entry, template


@pytest.fixture
def space():
    return AugmentedTupleSpace()


class TestCas:
    def test_cas_inserts_when_no_match(self, space):
        inserted, existing = space.cas(template("D", Formal("v")), entry("D", 1))
        assert inserted is True
        assert existing is None
        assert entry("D", 1) in space

    def test_cas_fails_when_match_exists(self, space):
        space.out(entry("D", 1))
        inserted, existing = space.cas(template("D", Formal("v")), entry("D", 2))
        assert inserted is False
        assert existing == entry("D", 1)
        assert entry("D", 2) not in space

    def test_cas_is_if_not_rdp_then_out(self, space):
        # The semantics of the paper: "if the reading of t̄ fails, insert t".
        pattern = template("D", Formal("v"))
        first = space.cas(pattern, entry("D", "a"))
        second = space.cas(pattern, entry("D", "b"))
        assert first == (True, None)
        assert second == (False, entry("D", "a"))
        assert len(space) == 1

    def test_cas_template_and_entry_may_differ_in_name(self, space):
        # cas is generic: the read template and the inserted entry need not
        # refer to the same tuple name.
        inserted, _ = space.cas(template("MISSING", ANY), entry("OTHER", 1))
        assert inserted
        assert entry("OTHER", 1) in space

    def test_cas_requires_entry(self, space):
        with pytest.raises(TupleSpaceError):
            space.cas(template("D", ANY), template("D", ANY))

    def test_cas_statistics(self, space):
        pattern = template("D", Formal("v"))
        space.cas(pattern, entry("D", 1))
        space.cas(pattern, entry("D", 2))
        space.cas(pattern, entry("D", 3))
        assert space.cas_statistics == {"successes": 1, "failures": 2}

    def test_cas_returning_match_exposes_formal_binding_value(self, space):
        # Algorithms read the decision through the formal field of a failed
        # cas; the returned match carries that value.
        space.cas(template("DECISION", Formal("d")), entry("DECISION", "blue"))
        inserted, existing = space.cas(
            template("DECISION", Formal("d")), entry("DECISION", "red")
        )
        assert not inserted
        assert existing.fields[1] == "blue"

    def test_consensus_number_two_processes_sequential(self, space):
        # The textbook wait-free 2-process (actually n-process) consensus
        # from cas, run sequentially: first proposer wins.
        def propose(value):
            inserted, existing = space.cas(template("C", Formal("v")), entry("C", value))
            return value if inserted else existing.fields[1]

        assert propose("x") == "x"
        assert propose("y") == "x"
        assert propose("z") == "x"
