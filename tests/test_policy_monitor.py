"""Unit tests for the reference monitor."""

from repro.policy import AccessPolicy, ReferenceMonitor, Rule, invoker_in
from repro.policy.invocation import Invocation


def make_monitor(**kwargs):
    policy = AccessPolicy(
        [Rule("Rread", "read"), Rule("Rwrite", "write", invoker_in({"p1"}))],
        name="test-policy",
    )
    return ReferenceMonitor(policy, **kwargs)


class TestAuthorize:
    def test_grants_and_denies(self):
        monitor = make_monitor()
        granted = monitor.authorize(Invocation("p1", "write", (1,)))
        denied = monitor.authorize(Invocation("p2", "write", (1,)))
        assert granted.allowed and granted.rule.name == "Rwrite"
        assert not denied.allowed and denied.rule is None

    def test_decision_is_truthy_iff_allowed(self):
        monitor = make_monitor()
        assert monitor.authorize(Invocation("p1", "read"))
        assert not monitor.authorize(Invocation("p1", "delete"))

    def test_statistics(self):
        monitor = make_monitor()
        monitor.authorize(Invocation("p1", "read"))
        monitor.authorize(Invocation("p2", "write"))
        monitor.authorize(Invocation("p2", "write"))
        assert monitor.granted_count == 1
        assert monitor.denied_count == 2
        assert monitor.denials_by_process() == {"p2": 2}

    def test_reset_statistics(self):
        monitor = make_monitor()
        monitor.authorize(Invocation("p2", "write"))
        monitor.reset_statistics()
        assert monitor.denied_count == 0
        assert monitor.denials_by_process() == {}

    def test_audit_log(self):
        monitor = make_monitor(audit=True)
        monitor.authorize(Invocation("p1", "read"))
        monitor.authorize(Invocation("p2", "write"))
        log = monitor.audit_log()
        assert len(log) == 2
        assert log[0].allowed and not log[1].allowed

    def test_audit_disabled_by_default(self):
        monitor = make_monitor()
        monitor.authorize(Invocation("p1", "read"))
        assert monitor.audit_log() == ()

    def test_state_provider_is_consulted(self):
        policy = AccessPolicy(
            [Rule("Rbig", "write", lambda inv, st: st > 10)], name="stateful"
        )
        current = {"value": 0}
        monitor = ReferenceMonitor(policy, state_provider=lambda: current["value"])
        assert not monitor.authorize(Invocation("p1", "write", (1,))).allowed
        current["value"] = 50
        assert monitor.authorize(Invocation("p1", "write", (1,))).allowed

    def test_explicit_state_overrides_provider(self):
        policy = AccessPolicy(
            [Rule("Rbig", "write", lambda inv, st: st > 10)], name="stateful"
        )
        monitor = ReferenceMonitor(policy, state_provider=lambda: 0)
        assert monitor.authorize(Invocation("p1", "write", (1,)), state=99).allowed

    def test_determinism_same_inputs_same_decision(self):
        # Determinism is what lets every replica evaluate policies locally.
        monitor_a = make_monitor()
        monitor_b = make_monitor()
        for process in ("p1", "p2", "p3"):
            for operation in ("read", "write", "delete"):
                inv = Invocation(process, operation, (1,))
                assert (
                    monitor_a.authorize(inv).allowed == monitor_b.authorize(inv).allowed
                )
