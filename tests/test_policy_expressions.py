"""Unit tests for the condition combinator DSL."""

import pytest

from repro.errors import PolicyEvaluationError
from repro.policy import (
    all_of,
    any_of,
    arg,
    arg_count_is,
    invoker,
    invoker_in,
    lift,
    negate,
    state,
)
from repro.policy.expressions import always, never
from repro.policy.invocation import Invocation
from repro.tuples import ANY, Formal, entry, template
from repro.policy.expressions import is_entry, is_formal, is_template


def invocation(process="p1", operation="write", arguments=()):
    return Invocation(process=process, operation=operation, arguments=tuple(arguments))


class TestLeafConditions:
    def test_always_and_never(self):
        assert always(invocation(), None)
        assert not never(invocation(), None)

    def test_invoker(self):
        assert invoker("p1")(invocation("p1"), None)
        assert not invoker("p1")(invocation("p2"), None)

    def test_invoker_in(self):
        condition = invoker_in({"p1", "p2"})
        assert condition(invocation("p2"), None)
        assert not condition(invocation("p3"), None)

    def test_arg_predicate(self):
        condition = arg(0, lambda v: v > 10)
        assert condition(invocation(arguments=(11,)), None)
        assert not condition(invocation(arguments=(9,)), None)
        assert not condition(invocation(arguments=()), None)

    def test_arg_count(self):
        assert arg_count_is(2)(invocation(arguments=(1, 2)), None)
        assert not arg_count_is(2)(invocation(arguments=(1,)), None)

    def test_state_predicate(self):
        condition = state(lambda s: s >= 5)
        assert condition(invocation(), 7)
        assert not condition(invocation(), 3)

    def test_lift_names_the_condition(self):
        condition = lift("custom", lambda inv, st: True)
        assert condition.description == "custom"
        assert condition(invocation(), None)


class TestCombinators:
    def test_and(self):
        condition = invoker("p1") & arg_count_is(1)
        assert condition(invocation("p1", arguments=(1,)), None)
        assert not condition(invocation("p1"), None)
        assert not condition(invocation("p2", arguments=(1,)), None)

    def test_or(self):
        condition = invoker("p1") | invoker("p2")
        assert condition(invocation("p2"), None)
        assert not condition(invocation("p3"), None)

    def test_not(self):
        condition = ~invoker("p1")
        assert condition(invocation("p2"), None)
        assert not condition(invocation("p1"), None)
        assert negate(invoker("p1"))(invocation("p2"), None)

    def test_all_of_and_any_of(self):
        assert all_of([])(invocation(), None)
        assert not any_of([])(invocation(), None)
        assert all_of([invoker("p1"), arg_count_is(0)])(invocation("p1"), None)
        assert any_of([invoker("p9"), arg_count_is(0)])(invocation("p1"), None)

    def test_description_composition(self):
        condition = invoker("p1") & ~arg_count_is(0)
        assert "AND" in condition.description
        assert "NOT" in condition.description


class TestErrorHandling:
    def test_exceptions_become_policy_evaluation_errors(self):
        condition = lift("boom", lambda inv, st: 1 / 0)
        with pytest.raises(PolicyEvaluationError):
            condition(invocation(), None)

    def test_policy_evaluation_error_propagates_unwrapped(self):
        def raiser(inv, st):
            raise PolicyEvaluationError("inner")

        with pytest.raises(PolicyEvaluationError, match="inner"):
            lift("x", raiser)(invocation(), None)


class TestTupleHelpers:
    def test_is_formal(self):
        assert is_formal(Formal("v"))
        assert not is_formal(ANY)
        assert not is_formal(3)

    def test_is_entry_and_is_template(self):
        assert is_entry(entry("A", 1))
        assert not is_entry(template("A", ANY))
        assert is_template(template("A", ANY))
        assert not is_template(entry("A", 1))
