"""Unit tests for the ordering node (PBFT-style protocol internals)."""

import pytest

from repro.policy import AccessPolicy, Rule
from repro.replication.crypto import KeyStore, MessageAuthenticator, digest
from repro.replication.messages import (
    Batch,
    ClientRequest,
    Commit,
    PrePrepare,
    Prepare,
    ViewChange,
    authenticate_request,
)
from repro.replication.network import NetworkConfig, SimulatedNetwork
from repro.replication.pbft import OrderingNode, ReplicaFaultMode
from repro.replication.replica import PEATSReplica
from repro.tuples import entry


def open_policy():
    return AccessPolicy([Rule("out", "out"), Rule("rdp", "rdp")], name="open")


def make_cluster(n=4, f=1, faults=None):
    network = SimulatedNetwork(NetworkConfig(seed=3))
    replica_ids = tuple(f"r{i}" for i in range(n))
    faults = faults or {}
    nodes = []
    for index, replica_id in enumerate(replica_ids):
        nodes.append(
            OrderingNode(
                replica_id,
                replica_ids,
                f,
                PEATSReplica(replica_id, open_policy()),
                network,
                view_change_timeout=10.0,
                fault_mode=faults.get(index, ReplicaFaultMode.CORRECT),
            )
        )
    replies = []
    network.register("client", lambda sender, payload: replies.append((sender, payload)))
    return network, nodes, replies


# Same default KeyStore as the test networks above, so client MAC vectors
# computed here verify at the replicas.
_AUTH = MessageAuthenticator(KeyStore())
_REPLICAS = tuple(f"r{i}" for i in range(4))


def make_request(request_id=0, operation="out", arguments=None, client="client"):
    request = ClientRequest(
        client=client,
        request_id=request_id,
        operation=operation,
        arguments=arguments if arguments is not None else (entry("A", request_id),),
    )
    return authenticate_request(request, _AUTH, _REPLICAS)


def make_batch(*requests):
    return Batch(requests=tuple(requests))


class TestOrderingBasics:
    def test_primary_and_quorum(self):
        _, nodes, _ = make_cluster()
        assert nodes[0].is_primary
        assert not nodes[1].is_primary
        assert nodes[0].quorum == 3
        assert nodes[0].primary_of(1) == "r1"

    def test_request_is_ordered_executed_and_replied(self):
        network, nodes, replies = make_cluster()
        request = make_request()
        network.broadcast("client", [n.replica_id for n in nodes], request)
        network.run()
        assert all(node.last_executed == 1 for node in nodes)
        assert len(replies) == 4
        digests = {reply.result_digest for _, reply in replies}
        assert len(digests) == 1

    def test_sequence_numbers_are_contiguous_across_requests(self):
        network, nodes, _ = make_cluster()
        for i in range(5):
            network.broadcast("client", [n.replica_id for n in nodes], make_request(i))
            network.run()
        assert all(node.last_executed == 5 for node in nodes)
        digests = {node.application.state_digest() for node in nodes}
        assert len(digests) == 1

    def test_retransmitted_request_is_not_executed_twice(self):
        network, nodes, replies = make_cluster()
        request = make_request()
        for _ in range(3):
            network.broadcast("client", [n.replica_id for n in nodes], request)
            network.run()
        assert all(node.last_executed == 1 for node in nodes)
        assert all(len(node.application.space.snapshot()) == 1 for node in nodes)
        # Retransmissions are answered from the reply cache.
        assert len(replies) >= 4

    def test_pre_prepare_from_non_primary_is_ignored(self):
        network, nodes, _ = make_cluster()
        batch = make_batch(make_request())
        rogue = PrePrepare(
            view=0,
            sequence=1,
            batch_digest=digest(batch),
            batch=batch,
            primary="r2",
        )
        network.send("r2", "r1", rogue)
        network.run()
        assert nodes[1].last_executed == 0

    def test_pre_prepare_with_wrong_digest_is_ignored(self):
        network, nodes, _ = make_cluster()
        batch = make_batch(make_request())
        forged = PrePrepare(
            view=0, sequence=1, batch_digest="bogus", batch=batch, primary="r0"
        )
        network.send("r0", "r1", forged)
        network.run()
        assert nodes[1].last_executed == 0

    def test_commit_quorum_needed_before_execution(self):
        network, nodes, _ = make_cluster()
        backup = nodes[1]
        batch = make_batch(make_request())
        message = PrePrepare(
            view=0,
            sequence=1,
            batch_digest=digest(batch),
            batch=batch,
            primary="r0",
        )
        backup.on_message("r0", message)
        # Only one prepare (from r2): not enough for the 2f+1 quorum.
        backup.on_message("r2", Prepare(view=0, sequence=1, batch_digest=digest(batch), replica="r2"))
        assert backup.last_executed == 0


class TestViewChange:
    def test_crashed_primary_is_replaced(self):
        network, nodes, replies = make_cluster(faults={0: ReplicaFaultMode.CRASHED})
        request = make_request()
        network.broadcast("client", [n.replica_id for n in nodes], request)
        network.run()
        assert all(node.last_executed == 0 for node in nodes[1:])
        # Simulated time passes; the backups' timers fire.
        network.advance_time(60.0)
        for node in nodes:
            node.check_timeouts()
        network.run()
        live = nodes[1:]
        assert all(node.view == 1 for node in live)
        assert all(node.last_executed == 1 for node in live)
        assert len({n.application.state_digest() for n in live}) == 1

    def test_view_change_votes_from_a_minority_do_not_switch_views(self):
        network, nodes, _ = make_cluster()
        vote = ViewChange(new_view=1, replica="r3", last_executed=0, prepared={})
        nodes[1].on_message("r3", vote)
        assert nodes[1].view == 0
        assert not nodes[1]._view_changing

    def test_f_plus_1_votes_make_a_replica_join_the_view_change(self):
        network, nodes, _ = make_cluster()
        for sender in ("r2", "r3"):
            nodes[1].on_message(
                sender, ViewChange(new_view=1, replica=sender, last_executed=0, prepared={})
            )
        # r1 joins on the second (f+1-th) vote; its own vote completes the
        # 2f+1 quorum and, being the primary of view 1, it installs the view
        # immediately.
        assert nodes[1].view == 1

    def test_crashed_replica_ignores_everything(self):
        network, nodes, _ = make_cluster(faults={2: ReplicaFaultMode.CRASHED})
        request = make_request()
        network.broadcast("client", [n.replica_id for n in nodes], request)
        network.run()
        assert nodes[2].last_executed == 0
        assert all(node.last_executed == 1 for node in (nodes[0], nodes[1], nodes[3]))

    def test_statistics_snapshot(self):
        _, nodes, _ = make_cluster()
        stats = nodes[0].statistics
        assert stats["view"] == 0
        assert stats["fault_mode"] == "correct"
