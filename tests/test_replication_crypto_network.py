"""Tests for the authenticated channels and the discrete-event network."""

import pytest

from repro.errors import AuthenticationError, SimulationError
from repro.replication.crypto import KeyStore, MessageAuthenticator, digest
from repro.replication.network import NetworkConfig, SimulatedNetwork


class TestCrypto:
    def test_digest_is_deterministic_and_content_sensitive(self):
        assert digest({"a": 1}) == digest({"a": 1})
        assert digest({"a": 1}) != digest({"a": 2})

    def test_shared_keys_are_symmetric_and_pairwise_distinct(self):
        keystore = KeyStore()
        assert keystore.shared_key("a", "b") == keystore.shared_key("b", "a")
        assert keystore.shared_key("a", "b") != keystore.shared_key("a", "c")

    def test_mac_verification(self):
        authenticator = MessageAuthenticator(KeyStore())
        tag = authenticator.mac("a", "b", {"op": "out"})
        assert authenticator.verify("a", "b", {"op": "out"}, tag)
        assert not authenticator.verify("a", "b", {"op": "inp"}, tag)
        assert not authenticator.verify("c", "b", {"op": "out"}, tag)
        assert authenticator.rejected_count == 2

    def test_require_valid_raises(self):
        authenticator = MessageAuthenticator(KeyStore())
        with pytest.raises(AuthenticationError):
            authenticator.require_valid("a", "b", "payload", "bogus-tag")


class TestNetwork:
    def make_network(self, **kwargs):
        network = SimulatedNetwork(NetworkConfig(seed=7, **kwargs))
        inboxes = {"a": [], "b": [], "c": []}
        for node in inboxes:
            network.register(node, lambda sender, payload, node=node: inboxes[node].append((sender, payload)))
        return network, inboxes

    def test_send_and_run_delivers(self):
        network, inboxes = self.make_network()
        network.send("a", "b", "hello")
        network.run()
        assert inboxes["b"] == [("a", "hello")]
        assert network.statistics["delivered"] == 1

    def test_broadcast_excludes_sender(self):
        network, inboxes = self.make_network()
        network.broadcast("a", ("a", "b", "c"), "x")
        network.run()
        assert inboxes["a"] == []
        assert inboxes["b"] == [("a", "x")] and inboxes["c"] == [("a", "x")]

    def test_unknown_receiver_rejected(self):
        network, _ = self.make_network()
        with pytest.raises(SimulationError):
            network.send("a", "nope", "x")

    def test_duplicate_registration_rejected(self):
        network, _ = self.make_network()
        with pytest.raises(SimulationError):
            network.register("a", lambda s, p: None)

    def test_time_advances_monotonically(self):
        network, _ = self.make_network()
        network.send("a", "b", 1)
        network.send("b", "c", 2)
        assert network.now == 0.0
        network.run()
        assert network.now > 0.0
        with pytest.raises(SimulationError):
            network.advance_time(-1)

    def test_deterministic_given_seed(self):
        def run_once():
            network = SimulatedNetwork(NetworkConfig(seed=11))
            order = []
            for node in ("a", "b"):
                network.register(node, lambda s, p, node=node: order.append((node, p)))
            for i in range(10):
                network.send("a", "b", i)
                network.send("b", "a", i)
            network.run()
            return order

        assert run_once() == run_once()

    def test_partition_and_heal(self):
        network, inboxes = self.make_network()
        network.partition("a", "b")
        network.send("a", "b", "lost")
        network.run()
        assert inboxes["b"] == []
        network.heal("a", "b")
        network.send("a", "b", "found")
        network.run()
        assert inboxes["b"] == [("a", "found")]

    def test_drop_probability(self):
        network = SimulatedNetwork(NetworkConfig(seed=5, drop_probability=1.0))
        received = []
        network.register("a", lambda s, p: received.append(p))
        network.register("b", lambda s, p: received.append(p))
        network.send("a", "b", "x")
        network.run()
        assert received == []
        assert network.statistics["dropped"] == 1

    def test_tampered_payloads_are_rejected_by_authentication(self):
        network, inboxes = self.make_network()
        network.set_tampering("a", lambda payload: ("forged", payload))
        network.send("a", "b", "original")
        network.run()
        assert inboxes["b"] == []
        assert network.statistics["rejected"] == 1
        network.set_tampering("a", None)
        network.send("a", "b", "clean")
        network.run()
        assert inboxes["b"] == [("a", "clean")]

    def test_run_until_condition(self):
        network, inboxes = self.make_network()
        network.send("a", "b", "x")
        network.send("a", "c", "y")
        reached = network.run_until(lambda: len(inboxes["b"]) == 1)
        assert reached
        # The remaining message is still delivered by a later run().
        network.run()
        assert inboxes["c"] == [("a", "y")]

    def test_run_guards_against_livelock(self):
        network, _ = self.make_network()

        def ping_forever(sender, payload):
            network.send("b", "a", payload)

        network_b_handler = ping_forever  # a and b ping-pong forever
        network2 = SimulatedNetwork(NetworkConfig(seed=1))
        network2.register("a", lambda s, p: network2.send("a", "b", p))
        network2.register("b", lambda s, p: network2.send("b", "a", p))
        network2.send("a", "b", "ping")
        with pytest.raises(SimulationError):
            network2.run(max_events=100)
