"""Unit tests for type signatures and bit accounting."""

import pytest

from repro.tuples import ANY, Formal, bits_of, entry, field_type, template, tuple_type, types_compatible
from repro.tuples.typing import AnyType, bits_for_domain


class TestTypeSignatures:
    def test_field_type_of_defined_values(self):
        assert field_type(3) is int
        assert field_type("x") is str

    def test_field_type_of_wildcard_and_formal(self):
        assert isinstance(field_type(ANY), AnyType)
        assert isinstance(field_type(Formal("v")), AnyType)
        assert field_type(Formal("v", str)) is str

    def test_tuple_type(self):
        signature = tuple_type(("A", 1, ANY))
        assert signature[0] is str and signature[1] is int
        assert isinstance(signature[2], AnyType)

    def test_types_compatible_anytype_on_template_side(self):
        assert types_compatible(int, AnyType())
        assert not types_compatible(AnyType(), int)

    def test_types_compatible_subclassing(self):
        class MyInt(int):
            pass

        assert types_compatible(MyInt, int)
        assert not types_compatible(int, MyInt)

    def test_bool_not_compatible_with_int(self):
        assert not types_compatible(bool, int)


class TestBitsAccounting:
    def test_domain_bits(self):
        assert bits_for_domain(2) == 1
        assert bits_for_domain(13) == 4
        assert bits_for_domain(1) == 1
        with pytest.raises(ValueError):
            bits_for_domain(0)

    def test_bits_of_primitives(self):
        assert bits_of(True) == 1
        assert bits_of(0) == 1
        assert bits_of(7) == 3
        assert bits_of(None) == 1
        assert bits_of(1.5) == 64
        assert bits_of("ab") == 16
        assert bits_of(b"ab") == 16

    def test_bits_of_domain_override(self):
        assert bits_of(12, domain_size=13) == 4
        assert bits_of("p1", domain_size=4) == 2

    def test_bits_of_containers(self):
        assert bits_of(frozenset({1, 2, 3})) == 5  # 1 + 2 + 2 bits
        assert bits_of((7, 7)) == 6
        assert bits_of({}) == 1
        assert bits_of({"a": 1}) == 8 + 1

    def test_bits_of_pattern_fields(self):
        assert bits_of(ANY) == 1
        assert bits_of(Formal("v")) == 1

    def test_bits_of_fallback_object(self):
        class Opaque:
            def __repr__(self):
                return "op"

        assert bits_of(Opaque()) == 16
