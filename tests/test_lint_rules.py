"""Golden-fixture tests for the RL001–RL006 rule set.

Each rule has three fixtures under ``tests/lint_fixtures/``: a positive
file (known violations at known sites), a negative file (idiomatic clean
code) and a pragma file (the same defect, suppressed with a justified
``# repro-lint: disable=`` pragma).  Fixtures force themselves into a
rule's scope with ``# repro-lint: scope=RLxxx`` (RL003 uses ``role=``
markers instead) because their paths are not under ``src/repro``.
"""

import pathlib

from repro.lint import LintEngine

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"


def lint(select, *names):
    engine = LintEngine(select=[select])
    return engine.lint_paths([FIXTURES / name for name in names])


class TestRL001DeterminismPurity:
    def test_flags_every_ambience_leak(self):
        violations = lint("RL001", "rl001_bad.py")
        assert len(violations) == 6
        assert {v.rule for v in violations} == {"RL001"}
        messages = " ".join(v.message for v in violations)
        assert "time.time" in messages
        assert "random.random" in messages
        assert "threading.Thread" in messages
        assert "uuid.uuid4" in messages
        assert "unseeded Random" in messages
        assert "time.monotonic" in messages

    def test_seeded_rng_and_injected_clock_are_clean(self):
        assert lint("RL001", "rl001_good.py") == []

    def test_inline_and_standalone_pragmas_suppress(self):
        assert lint("RL001", "rl001_pragma.py") == []


class TestRL002GuardedTracer:
    def test_flags_unguarded_record_and_helper_calls(self):
        violations = lint("RL002", "rl002_bad.py")
        assert len(violations) == 2
        messages = [v.message for v in violations]
        assert any("tracer.record()" in m for m in messages)
        assert any("_trace_flush" in m for m in messages)

    def test_enabled_guard_and_helper_body_are_clean(self):
        assert lint("RL002", "rl002_good.py") == []

    def test_pragma_suppresses(self):
        assert lint("RL002", "rl002_pragma.py") == []

    def test_flags_unguarded_flight_record_and_helper_calls(self):
        violations = lint("RL002", "rl002_flight_bad.py")
        assert len(violations) == 2
        messages = [v.message for v in violations]
        assert any("flight.record()" in m for m in messages)
        assert any("_flight_note" in m for m in messages)

    def test_guarded_flight_calls_and_helper_body_are_clean(self):
        assert lint("RL002", "rl002_flight_good.py") == []


class TestRL003CodecCompleteness:
    def test_flags_unregistered_and_stale_names(self):
        violations = lint("RL003", "rl003_messages.py", "rl003_codec_bad.py")
        assert len(violations) == 2
        messages = " ".join(v.message for v in violations)
        assert "'Pong'" in messages  # dataclass without a wire tag
        assert "'Stale'" in messages  # registration without a dataclass
        assert all(v.path.endswith("rl003_codec_bad.py") for v in violations)

    def test_matching_registry_is_clean(self):
        assert lint("RL003", "rl003_messages.py", "rl003_codec_good.py") == []

    def test_single_sided_run_is_silently_skipped(self):
        assert lint("RL003", "rl003_messages.py") == []

    def test_unregistered_notify_message_is_flagged(self):
        # The notify-channel shape: RegisterWaiter/CancelWaiter round-trip
        # but the push itself (Notify) never got a wire tag.
        violations = lint(
            "RL003", "rl003_notify_messages.py", "rl003_notify_codec_bad.py"
        )
        assert len(violations) == 1
        assert "'Notify'" in violations[0].message
        assert violations[0].path.endswith("rl003_notify_codec_bad.py")

    def test_unregistered_txn_message_is_flagged(self):
        # The transaction-protocol shape: prepare/vote/decision round-trip
        # but the apply acknowledgement (TxnAck) never got a wire tag.
        violations = lint(
            "RL003", "rl003_txn_messages.py", "rl003_txn_codec_bad.py"
        )
        assert len(violations) == 1
        assert "'TxnAck'" in violations[0].message
        assert violations[0].path.endswith("rl003_txn_codec_bad.py")


class TestRL004MetricNameConsistency:
    def test_flags_dynamic_malformed_conflicting_and_near_miss_names(self):
        violations = lint("RL004", "rl004_bad.py")
        assert len(violations) == 4
        messages = " ".join(v.message for v in violations)
        assert "string literal" in messages
        assert "'Bad-Name'" in messages
        assert "one family, one kind" in messages
        assert "within one edit" in messages

    def test_literal_wellformed_names_are_clean(self):
        assert lint("RL004", "rl004_good.py") == []

    def test_pragma_suppresses(self):
        assert lint("RL004", "rl004_pragma.py") == []


class TestRL005HandlerContainment:
    def test_flags_raw_handler_invocation(self):
        violations = lint("RL005", "rl005_bad.py")
        assert len(violations) == 1
        assert "handler" in violations[0].message

    def test_try_except_and_guarded_deferral_are_clean(self):
        assert lint("RL005", "rl005_good.py") == []

    def test_pragma_suppresses(self):
        assert lint("RL005", "rl005_pragma.py") == []


class TestRL006BoundedCollections:
    def test_flags_unpruned_growth(self):
        violations = lint("RL006", "rl006_bad.py")
        assert len(violations) == 2
        attrs = " ".join(v.message for v in violations)
        assert "_pending" in attrs
        assert "_log" in attrs

    def test_pruned_swapped_and_init_growth_are_clean(self):
        assert lint("RL006", "rl006_good.py") == []

    def test_pragma_with_multiline_justification_suppresses(self):
        assert lint("RL006", "rl006_pragma.py") == []


class TestEngineSurface:
    def test_select_other_rule_sees_nothing(self):
        # The RL001 fixture has no tracer calls: selecting RL002 over it
        # must produce nothing even though the file is full of findings.
        assert lint("RL002", "rl001_bad.py") == []

    def test_violations_sort_stably_and_render(self):
        violations = lint("RL001", "rl001_bad.py")
        assert violations == sorted(
            violations, key=lambda v: (v.path, v.line, v.rule)
        )
        rendered = violations[0].render()
        assert "RL001" in rendered and ":" in rendered

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        violations = LintEngine().lint_paths([bad])
        assert len(violations) == 1
        assert violations[0].rule == "RL000"
