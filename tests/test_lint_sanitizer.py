"""Runtime determinism sanitizer: tripwires, restoration and sim runs.

The tier-1 smoke at the bottom is the dynamic counterpart of RL001: a
small consensus-storm scenario runs clean under the sanitizer (the
virtual-time engine never touches the wall clock), and a workload body
that sneaks in one ``time.time()`` call trips at that exact site.
"""

import os
import random
import time
import uuid

import pytest

from repro.lint.sanitizer import (
    DeterminismViolation,
    SANITIZED_TARGETS,
    determinism_sanitizer,
    run_sanitized,
)
from repro.sim import Scenario, run_scenario
from repro.sim.clients import ok_value, op_out, op_rdp
from repro.sim.workloads import consensus_storm
from repro.tuples import ANY, entry, template


class TestTripwires:
    def test_wall_clock_trips(self):
        with determinism_sanitizer():
            with pytest.raises(DeterminismViolation, match="time.time"):
                time.time()

    def test_global_rng_trips(self):
        with determinism_sanitizer():
            with pytest.raises(DeterminismViolation, match="random.random"):
                random.random()

    def test_ambient_entropy_trips(self):
        with determinism_sanitizer():
            with pytest.raises(DeterminismViolation, match="os.urandom"):
                os.urandom(8)
            with pytest.raises(DeterminismViolation, match="uuid.uuid4"):
                uuid.uuid4()

    def test_message_names_the_offending_call_site(self):
        with determinism_sanitizer():
            with pytest.raises(DeterminismViolation, match=__file__.split("/")[-1].replace(".", r"\.")):
                time.monotonic()

    def test_seeded_random_instances_are_untouched(self):
        with determinism_sanitizer():
            rng = random.Random(42)
            assert rng.random() == random.Random(42).random()

    def test_allow_exempts_named_targets(self):
        with determinism_sanitizer(allow=("time.sleep",)):
            time.sleep(0)  # exempted
            with pytest.raises(DeterminismViolation):
                time.time()  # still sanitized


class TestRestoration:
    def test_entry_points_restore_on_exit(self):
        original = time.time
        with determinism_sanitizer():
            assert time.time is not original
        assert time.time is original
        assert isinstance(time.time(), float)

    def test_entry_points_restore_after_a_trip(self):
        original = random.random
        with pytest.raises(DeterminismViolation):
            with determinism_sanitizer():
                random.random()
        assert random.random is original

    def test_nested_sanitizers_compose(self):
        original = time.time
        with determinism_sanitizer():
            outer = time.time
            with determinism_sanitizer():
                with pytest.raises(DeterminismViolation):
                    time.time()
            assert time.time is outer  # inner restore re-installs outer tripwire
        assert time.time is original

    def test_every_target_is_a_real_attribute(self):
        # Guards against SANITIZED_TARGETS rotting as stdlib surfaces move.
        missing = [
            f"{module.__name__}.{attribute}"
            for module, attribute in SANITIZED_TARGETS
            if not hasattr(module, attribute)
        ]
        assert missing == []


def _tainted_program():
    time.time()  # repro-lint: disable=RL001 — the defect under test
    result = yield op_out(entry("TAINTED", 1))
    ok_value(result)


def _clean_program():
    result = yield op_out(entry("CLEAN", 1))
    ok_value(result)
    found = yield op_rdp(template("CLEAN", ANY))
    ok_value(found)


class TestSanitizedScenarios:
    def test_consensus_storm_runs_clean_under_sanitizer(self):
        scenario = Scenario(
            name="sanitized-storm", clients=consensus_storm(4), seed=7
        )
        result = run_sanitized(scenario)
        assert result.completed

    def test_sanitized_run_matches_unsanitized_trace(self):
        scenario = Scenario(
            name="sanitized-replay", clients=consensus_storm(3), seed=11
        )
        plain = run_scenario(scenario)
        sanitized = run_sanitized(scenario)
        assert plain.metrics.trace_text() == sanitized.metrics.trace_text()

    def test_injected_wall_clock_read_trips(self):
        scenario = Scenario(
            name="tainted",
            clients=[("c0", _tainted_program), ("c1", _clean_program)],
            seed=3,
        )
        with pytest.raises(DeterminismViolation, match="time.time"):
            run_sanitized(scenario)

    def test_determinism_guard_fixture_is_exported(self):
        import repro.lint.sanitizer as plugin

        assert hasattr(plugin, "determinism_guard")
