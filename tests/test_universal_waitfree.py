"""Tests for Algorithm 4 — the wait-free universal construction."""

import threading

import pytest

from repro.universal import WaitFreeUniversalConstruction
from repro.universal.emulated import counter_type, fifo_queue_type, kv_store_type
from repro.tuples import ANY, Formal, template


class TestConstruction:
    def test_requires_known_unique_processes(self):
        with pytest.raises(ValueError):
            WaitFreeUniversalConstruction(counter_type(), [])
        with pytest.raises(ValueError):
            WaitFreeUniversalConstruction(counter_type(), ["a", "a"])
        construction = WaitFreeUniversalConstruction(counter_type(), ["a", "b"])
        with pytest.raises(ValueError):
            construction.handle("stranger")

    def test_index_assignment(self):
        construction = WaitFreeUniversalConstruction(counter_type(), ["a", "b", "c"])
        assert construction.index_of("b") == 1
        assert construction.handle("c").index == 2


class TestEmulation:
    def test_counter_two_processes(self):
        construction = WaitFreeUniversalConstruction(counter_type(), ["a", "b"])
        ha, hb = construction.handle("a"), construction.handle("b")
        assert ha.invoke("increment") == 0
        assert hb.invoke("increment") == 1
        assert ha.invoke("read") == 2

    def test_announcements_are_cleaned_up(self):
        construction = WaitFreeUniversalConstruction(counter_type(), ["a", "b", "c"])
        handle = construction.handle("a")
        handle.invoke("increment")
        leftover = [
            stored for stored in construction.space.snapshot() if stored.fields[0] == "ANN"
        ]
        assert leftover == []

    def test_threaded_invocations_match_sequential_spec(self):
        construction = WaitFreeUniversalConstruction(kv_store_type(), ["a", "b"])
        wa, wb = construction.handle("a"), construction.handle("b")
        wa.invoke("put", "k", 1)
        wb.invoke("put", "k", 2)
        assert wa.invoke("get", "k") == 2
        threaded = construction.threaded_invocations()
        state, _ = construction.object_type.run_sequentially(threaded)
        assert dict(state) == {"k": 2}

    def test_lemma_3_contiguous_unique_positions(self):
        construction = WaitFreeUniversalConstruction(counter_type(), ["a", "b", "c"])
        handles = [construction.handle(p) for p in ("a", "b", "c")]
        for _ in range(4):
            for handle in handles:
                handle.invoke("increment")
        positions = sorted(
            stored.fields[1]
            for stored in construction.space.snapshot()
            if stored.fields[0] == "SEQ"
        )
        assert positions == list(range(1, len(positions) + 1))

    def test_refresh(self):
        construction = WaitFreeUniversalConstruction(counter_type(), ["a", "b"])
        ha, hb = construction.handle("a"), construction.handle("b")
        ha.invoke("increment")
        ha.invoke("increment")
        assert hb.refresh() == 2


class TestHelpingMechanism:
    def test_helper_threads_announced_invocation_of_preferred_process(self):
        construction = WaitFreeUniversalConstruction(counter_type(), ["a", "b", "c"])
        space = construction.space
        hb = construction.handle("b")

        # Process b announces but stalls before threading (we simulate the
        # stall by publishing the announcement through the space directly,
        # exactly what line 4 of the algorithm does).
        from repro.universal.object_type import ObjectInvocation
        from repro.tuples import entry

        stalled = ObjectInvocation("increment", (), "b", 0)
        assert space.out(entry("ANN", 1, stalled), process="b")

        # Position 1 prefers index 1 % 3 = 1, i.e. process b.  When a runs,
        # the policy forces it to help b before threading its own work.
        ha = construction.handle("a")
        ha.invoke("increment")

        threaded = construction.threaded_invocations()
        assert threaded[0] == stalled
        assert ha.statistics["helps_given"] >= 1

    def test_operation_completes_despite_stalled_peer(self):
        # Wait-freedom in the simplest adversarial setting: the other
        # process announces an invocation and then stops forever; ours must
        # still complete (by helping it first).
        construction = WaitFreeUniversalConstruction(counter_type(), ["a", "b"])
        from repro.universal.object_type import ObjectInvocation
        from repro.tuples import entry

        stalled = ObjectInvocation("increment", (), "b", 0)
        construction.space.out(entry("ANN", 1, stalled), process="b")

        ha = construction.handle("a")
        for _ in range(5):
            ha.invoke("increment")
        # a's five increments plus the helped one are all threaded.
        assert len(construction.threaded_invocations()) == 6

    def test_helped_invocation_is_not_threaded_twice(self):
        construction = WaitFreeUniversalConstruction(counter_type(), ["a", "b", "c"])
        handles = {p: construction.handle(p) for p in ("a", "b", "c")}
        for _ in range(3):
            for handle in handles.values():
                handle.invoke("increment")
        threaded = construction.threaded_invocations()
        assert len(threaded) == len(set(threaded)) == 9


class TestConcurrentExecution:
    def test_threaded_fetch_and_increment_tickets_are_unique(self):
        processes = [f"p{i}" for i in range(4)]
        construction = WaitFreeUniversalConstruction(counter_type(), processes)
        tickets = []
        lock = threading.Lock()

        def worker(pid):
            handle = construction.handle(pid)
            for _ in range(5):
                ticket = handle.invoke("increment")
                with lock:
                    tickets.append(ticket)

        threads = [threading.Thread(target=worker, args=(p,)) for p in processes]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(tickets) == list(range(20))

    def test_threaded_queue_preserves_elements(self):
        processes = ["prod0", "prod1", "consumer"]
        construction = WaitFreeUniversalConstruction(fifo_queue_type(), processes)
        produced = [f"item-{i}" for i in range(10)]

        def producer(pid, items):
            handle = construction.handle(pid)
            for item in items:
                handle.invoke("enqueue", item)

        threads = [
            threading.Thread(target=producer, args=(processes[i], produced[i::2]))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        consumer = construction.handle("consumer")
        drained = []
        while True:
            item = consumer.invoke("dequeue")
            if item == "QUEUE-EMPTY":
                break
            drained.append(item)
        assert sorted(drained) == sorted(produced)
