"""Tests for the coordination primitives (election, lock, barrier)."""

import pytest

from repro.coordination import Barrier, DistributedLock, LeaderElection, barrier_policy
from repro.coordination.lock import ticket_lock_type
from repro.errors import TerminationError
from repro.model.faults import bottom_forcing_byzantine, silent_byzantine
from repro.peo import PEATS
from repro.policy.library import BOTTOM
from repro.universal.object_type import ObjectInvocation


class TestLeaderElection:
    def test_justified_leader_is_elected(self):
        election = LeaderElection(range(4), 1)
        leader, run = election.run({0: "node-1", 1: "node-1", 2: "node-2"})
        assert run.terminated
        assert leader == "node-1"

    def test_scattered_nominations_use_fallback(self):
        election = LeaderElection(range(4), 1)
        leader, run = election.run({0: "c", 1: "a", 2: "b", 3: "d"})
        assert run.terminated
        assert run.decision() == BOTTOM
        assert leader == "a"  # smallest nominated candidate

    def test_custom_fallback(self):
        election = LeaderElection(range(4), 1, fallback=lambda noms: max(noms.values()))
        leader, _ = election.run({0: "c", 1: "a", 2: "b", 3: "d"})
        assert leader == "d"

    def test_byzantine_cannot_force_fallback_when_quorum_nominates(self):
        election = LeaderElection(range(4), 1)
        leader, run = election.run(
            {0: "node-1", 1: "node-1", 2: "node-1"},
            byzantine={3: bottom_forcing_byzantine()},
        )
        assert leader == "node-1"
        assert run.agreement

    def test_incomplete_participation_returns_none(self):
        election = LeaderElection(range(4), 1)
        leader, run = election.run({0: "node-1"}, max_rounds=30)
        assert leader is None and not run.terminated

    def test_blocking_nominate_path(self):
        election = LeaderElection(range(4), 0)  # t = 0: a single nomination decides
        leader = election.nominate(0, "node-9")
        assert leader == "node-9"


class TestTicketLockType:
    def test_sequential_specification(self):
        lock_type = ticket_lock_type()
        invocations = [
            ObjectInvocation("acquire", ("a",), "a", 0),
            ObjectInvocation("acquire", ("b",), "b", 0),
            ObjectInvocation("holder", (), "a", 1),
            ObjectInvocation("release", ("b",), "b", 1),   # not the holder
            ObjectInvocation("release", ("a",), "a", 2),
            ObjectInvocation("holder", (), "b", 2),
        ]
        _, replies = lock_type.run_sequentially(invocations)
        assert replies == [0, 1, "a", False, True, "b"]

    def test_steal_evicts_holder(self):
        lock_type = ticket_lock_type()
        _, replies = lock_type.run_sequentially(
            [
                ObjectInvocation("acquire", ("a",), "a", 0),
                ObjectInvocation("steal", (), "b", 0),
                ObjectInvocation("holder", (), "b", 1),
            ]
        )
        assert replies == [0, True, None]

    def test_reacquire_returns_same_ticket(self):
        lock_type = ticket_lock_type()
        _, replies = lock_type.run_sequentially(
            [
                ObjectInvocation("acquire", ("a",), "a", 0),
                ObjectInvocation("acquire", ("a",), "a", 1),
            ]
        )
        assert replies == [0, 0]

    def test_unknown_operation(self):
        with pytest.raises(ValueError):
            ticket_lock_type().apply((0, 0, frozenset()), ObjectInvocation("smash"))


class TestDistributedLock:
    def test_mutual_exclusion_and_fifo_handover(self):
        processes = ["a", "b", "c"]
        lock = DistributedLock(processes)
        assert lock.acquire("a") == 0
        assert lock.acquire("b") == 1
        assert lock.holds("a")
        assert not lock.holds("b")
        assert lock.release("b") is False  # only the holder may release
        assert lock.release("a") is True
        assert lock.holds("b")
        assert lock.current_holder("c") == "b"

    def test_steal_models_lease_expiry(self):
        processes = ["a", "b"]
        lock = DistributedLock(processes)
        lock.acquire("a")
        lock.acquire("b")
        assert lock.holds("a")
        assert lock.steal("b") is True  # a's lease expired
        assert lock.holds("b")

    def test_lock_free_variant(self):
        lock = DistributedLock(["a", "b"], wait_free=False)
        assert lock.acquire("a") == 0
        assert lock.holds("a")

    def test_at_most_one_holder_invariant(self):
        processes = ["a", "b", "c", "d"]
        lock = DistributedLock(processes)
        for process in processes:
            lock.acquire(process)
        holders = [process for process in processes if lock.holds(process)]
        assert len(holders) == 1


class TestBarrier:
    def test_policy_allows_single_arrival_per_phase(self):
        space = PEATS(barrier_policy(["a", "b"]))
        from repro.tuples import entry

        assert space.out(entry("ARRIVE", "a", 0), process="a")
        assert not space.out(entry("ARRIVE", "a", 0), process="a")   # duplicate
        assert not space.out(entry("ARRIVE", "b", 0), process="a")   # impersonation
        assert not space.out(entry("ARRIVE", "a", -1), process="a")  # bad phase
        assert space.out(entry("ARRIVE", "a", 1), process="a")       # next phase ok

    def test_barrier_opens_at_n_minus_t(self):
        barrier = Barrier(["a", "b", "c", "d"], t=1)
        assert barrier.quorum == 3
        barrier.arrive("a")
        barrier.arrive("b")
        assert not barrier.ready("a")
        barrier.arrive("c")
        assert barrier.ready("a")
        assert barrier.await_("a") >= 3

    def test_byzantine_silence_cannot_block_the_barrier(self):
        barrier = Barrier(["a", "b", "c", "d"], t=1)
        for process in ("a", "b", "c"):  # "d" is Byzantine and stays silent
            barrier.arrive(process)
        for process in ("a", "b", "c"):
            assert barrier.ready(process)

    def test_await_times_out_without_quorum(self):
        barrier = Barrier(["a", "b", "c", "d"], t=1)
        barrier.arrive("a")
        with pytest.raises(TerminationError):
            barrier.await_("a", max_iterations=10)

    def test_phases_are_independent(self):
        barrier = Barrier(["a", "b", "c"], t=0)
        for process in ("a", "b", "c"):
            barrier.arrive(process, phase=0)
        assert barrier.ready("a", phase=0)
        assert not barrier.ready("a", phase=1)

    def test_requires_more_processes_than_faults(self):
        with pytest.raises(ValueError):
            Barrier(["a"], t=1)
