"""Unit tests for Entry and Template construction and behaviour."""

import pytest

from repro.errors import MalformedTupleError
from repro.tuples import ANY, Entry, Formal, Template, entry, template


class TestEntry:
    def test_basic_construction(self):
        e = entry("PROPOSE", 1, 0)
        assert e.arity == 3
        assert e.fields == ("PROPOSE", 1, 0)
        assert list(e) == ["PROPOSE", 1, 0]
        assert e[0] == "PROPOSE"

    def test_rejects_empty(self):
        with pytest.raises(MalformedTupleError):
            entry()

    def test_rejects_wildcard_field(self):
        with pytest.raises(MalformedTupleError):
            entry("DECISION", ANY)

    def test_rejects_formal_field(self):
        with pytest.raises(MalformedTupleError):
            entry("DECISION", Formal("v"))

    def test_rejects_unhashable_field(self):
        with pytest.raises(MalformedTupleError):
            entry("DECISION", [1, 2])

    def test_equality_and_hash(self):
        assert entry("A", 1) == entry("A", 1)
        assert entry("A", 1) != entry("A", 2)
        assert hash(entry("A", 1)) == hash(entry("A", 1))

    def test_entry_not_equal_to_template_with_same_fields(self):
        assert entry("A", 1) != template("A", 1)

    def test_size_bits_defaults(self):
        e = entry("DECISION", 1)
        assert e.size_bits() >= 8 * len("DECISION") + 1

    def test_size_bits_with_domains(self):
        e = entry("DECISION", 7)
        bits = e.size_bits(domain_sizes=[None, 13])
        assert bits == 8 * len("DECISION") + 4  # ceil(log2 13) = 4

    def test_size_bits_domain_length_mismatch(self):
        with pytest.raises(ValueError):
            entry("A", 1).size_bits(domain_sizes=[None])

    def test_to_template_round_trip(self):
        e = entry("A", 1)
        t = e.to_template()
        assert isinstance(t, Template)
        assert t.fields == e.fields

    def test_frozenset_fields_allowed(self):
        e = entry("DECISION", 1, frozenset({1, 2}))
        assert e.fields[2] == frozenset({1, 2})


class TestTemplate:
    def test_basic_construction(self):
        t = template("PROPOSE", ANY, Formal("v"))
        assert t.arity == 3
        assert t.formal_names == ("v",)
        assert not t.is_fully_defined

    def test_defined_positions(self):
        t = template("PROPOSE", ANY, Formal("v"))
        assert t.defined_positions() == (0,)

    def test_rejects_duplicate_formal_names(self):
        with pytest.raises(MalformedTupleError):
            template("A", Formal("v"), Formal("v"))

    def test_rejects_empty(self):
        with pytest.raises(MalformedTupleError):
            template()

    def test_rejects_unhashable_defined_field(self):
        with pytest.raises(MalformedTupleError):
            template("A", {"no": "dicts"})

    def test_fully_defined_template_converts_to_entry(self):
        t = template("A", 1)
        assert t.is_fully_defined
        assert t.to_entry() == entry("A", 1)

    def test_partial_template_cannot_convert_to_entry(self):
        with pytest.raises(MalformedTupleError):
            template("A", ANY).to_entry()

    def test_type_signature_marks_wildcards(self):
        t = template("A", ANY, Formal("v", int))
        signature = t.type_signature()
        assert signature[0] is str
        assert signature[2] is int

    def test_repr_is_informative(self):
        assert "Formal" not in repr(template("A", Formal("v")))
        assert "?v" in repr(template("A", Formal("v")))
