"""Tests for processes, schedulers and the Byzantine attack battery."""

import pytest

from repro.model import (
    ProcessRole,
    adversarial_schedule,
    make_processes,
    random_schedule,
    reversed_schedule,
    round_robin_schedule,
)
from repro.model.faults import attack_peats
from repro.peo import PEATS
from repro.policy import (
    default_consensus_policy,
    lock_free_universal_policy,
    strong_consensus_policy,
    wait_free_universal_policy,
    weak_consensus_policy,
)


class TestProcessSpecs:
    def test_make_processes_roles(self):
        specs = make_processes(5, byzantine=2)
        assert [spec.pid for spec in specs] == [0, 1, 2, 3, 4]
        assert [spec.is_correct for spec in specs] == [True, True, True, False, False]
        assert specs[-1].role is ProcessRole.BYZANTINE
        assert specs[-1].is_byzantine

    def test_prefix_names(self):
        specs = make_processes(2, prefix="node-")
        assert [spec.pid for spec in specs] == ["node-0", "node-1"]

    def test_validation(self):
        with pytest.raises(ValueError):
            make_processes(0)
        with pytest.raises(ValueError):
            make_processes(3, byzantine=4)


class TestSchedules:
    ready = ("a", "b", "c", "d")

    def test_round_robin_rotates(self):
        assert round_robin_schedule(self.ready, 0) == self.ready
        assert round_robin_schedule(self.ready, 1) == ("b", "c", "d", "a")
        assert round_robin_schedule((), 5) == ()

    def test_reversed(self):
        assert reversed_schedule(self.ready, 0) == ("d", "c", "b", "a")

    def test_random_is_seeded_and_permutes(self):
        schedule_a = random_schedule(3)
        schedule_b = random_schedule(3)
        assert schedule_a(self.ready, 0) == schedule_b(self.ready, 0)
        assert sorted(schedule_a(self.ready, 1)) == sorted(self.ready)

    def test_adversarial_starves_victims(self):
        schedule = adversarial_schedule(["a"], starve_rounds=3)
        assert "a" not in schedule(self.ready, 1)
        assert "a" not in schedule(self.ready, 2)
        assert "a" in schedule(self.ready, 3)


class TestAttackBattery:
    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda: strong_consensus_policy(range(4), 1),
            lambda: default_consensus_policy(range(4), 1),
        ],
        ids=["strong", "default"],
    )
    def test_consensus_policies_deny_every_attack(self, policy_factory):
        space = PEATS(policy_factory())
        report = attack_peats(space.bind(3), 3, victims=[0, 1], t=1)
        assert report.total >= 10
        assert report.denied == report.total
        assert report.succeeded_attacks() == []

    def test_weak_policy_denies_all_non_cas_attacks(self):
        space = PEATS(weak_consensus_policy())
        report = attack_peats(space.bind("byz"), "byz", victims=["p1"], t=1)
        # The only attack that can "succeed" against Fig. 3 is the DECISION
        # cas itself — but the battery's decision attacks use 3-field
        # DECISION tuples (the strong-consensus shape), which Fig. 3 rejects.
        assert report.denied == report.total

    def test_universal_policies_reject_out_of_order_threading(self):
        lock_free = PEATS(lock_free_universal_policy())
        report = attack_peats(lock_free.bind("byz"), "byz", t=1)
        assert report.succeeded_attacks() == []
        wait_free = PEATS(wait_free_universal_policy(["a", "b", "c"]))
        report = attack_peats(wait_free.bind("a"), "a", t=1)
        assert report.succeeded_attacks() == []

    def test_report_accessors(self):
        space = PEATS(strong_consensus_policy(range(4), 1))
        report = attack_peats(space.bind(0), 0, victims=[1], t=1)
        assert report.total == report.denied + report.succeeded
        assert "denied" in repr(report)
