"""Tests for Algorithm 3 — the lock-free universal construction."""

import threading

import pytest

from repro.errors import UniversalConstructionError
from repro.universal import LockFreeUniversalConstruction
from repro.universal.emulated import counter_type, fifo_queue_type, kv_store_type


class TestSequentialEmulation:
    def test_counter_single_process(self):
        construction = LockFreeUniversalConstruction(counter_type())
        handle = construction.handle("p1")
        assert handle.invoke("increment") == 0
        assert handle.invoke("increment") == 1
        assert handle.invoke("read") == 2
        assert handle.state == 2

    def test_two_processes_interleaved(self):
        construction = LockFreeUniversalConstruction(counter_type())
        h1, h2 = construction.handle("p1"), construction.handle("p2")
        assert h1.invoke("increment") == 0
        assert h2.invoke("increment") == 1  # h2 replays h1's op first
        assert h1.invoke("read") == 2
        assert h2.invoke("read") == 2

    def test_fifo_queue_across_processes(self):
        construction = LockFreeUniversalConstruction(fifo_queue_type())
        producer, consumer = construction.handle("prod"), construction.handle("cons")
        producer.invoke("enqueue", "job-1")
        producer.invoke("enqueue", "job-2")
        assert consumer.invoke("dequeue") == "job-1"
        assert consumer.invoke("dequeue") == "job-2"
        assert consumer.invoke("dequeue") == "QUEUE-EMPTY"

    def test_replays_match_sequential_specification(self):
        construction = LockFreeUniversalConstruction(kv_store_type())
        writer, reader = construction.handle("w"), construction.handle("r")
        writer.invoke("put", "x", 1)
        writer.invoke("put", "y", 2)
        assert reader.invoke("get", "x") == 1
        threaded = construction.threaded_invocations()
        _, replies = construction.object_type.run_sequentially(threaded)
        assert replies[-1] == 1

    def test_uniformity_new_processes_can_join_anytime(self):
        construction = LockFreeUniversalConstruction(counter_type())
        construction.handle("p1").invoke("increment")
        late = construction.handle("a-late-process")
        assert late.invoke("read") == 1

    def test_refresh_catches_up_without_invoking(self):
        construction = LockFreeUniversalConstruction(counter_type())
        h1, h2 = construction.handle("p1"), construction.handle("p2")
        for _ in range(3):
            h1.invoke("increment")
        assert h2.refresh() == 3
        assert h2.position == 3

    def test_statistics(self):
        construction = LockFreeUniversalConstruction(counter_type())
        handle = construction.handle("p1")
        handle.invoke("increment")
        stats = handle.statistics
        assert stats["invocations"] == 1
        assert stats["cas_wins"] == 1

    def test_validates_operations(self):
        construction = LockFreeUniversalConstruction(counter_type())
        with pytest.raises(ValueError):
            construction.handle("p1").invoke("no-such-op")

    def test_max_attempts_guard(self):
        construction = LockFreeUniversalConstruction(counter_type())
        h1, h2 = construction.handle("p1"), construction.handle("p2")
        # Give p2 a backlog to replay with a max_attempts that cannot cover it.
        for _ in range(5):
            h1.invoke("increment")
        with pytest.raises(UniversalConstructionError):
            h2.invoke("increment", max_attempts=2)


class TestTotalOrderInvariants:
    def test_lemma_1_contiguous_unique_positions(self):
        construction = LockFreeUniversalConstruction(counter_type())
        handles = [construction.handle(f"p{i}") for i in range(3)]
        for round_number in range(5):
            for handle in handles:
                handle.invoke("increment")
        positions = sorted(
            stored.fields[1]
            for stored in construction.space.snapshot()
            if stored.fields[0] == "SEQ"
        )
        assert positions == list(range(1, len(positions) + 1))

    def test_all_processes_converge_to_same_state(self):
        construction = LockFreeUniversalConstruction(counter_type())
        handles = [construction.handle(f"p{i}") for i in range(4)]
        for handle in handles:
            handle.invoke("increment", 10)
        final_states = {handle.refresh() for handle in handles}
        assert final_states == {40}


class TestConcurrentExecution:
    def test_threaded_counter_is_linearizable(self):
        construction = LockFreeUniversalConstruction(counter_type())
        tickets = []
        lock = threading.Lock()

        def worker(pid):
            handle = construction.handle(pid)
            for _ in range(5):
                ticket = handle.invoke("increment")
                with lock:
                    tickets.append(ticket)

        threads = [threading.Thread(target=worker, args=(f"p{i}",)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # fetch&increment tickets must be exactly 0..19 with no duplicates.
        assert sorted(tickets) == list(range(20))

    def test_threaded_queue_preserves_elements(self):
        construction = LockFreeUniversalConstruction(fifo_queue_type())
        produced = [f"item-{i}" for i in range(12)]

        def producer(pid, items):
            handle = construction.handle(pid)
            for item in items:
                handle.invoke("enqueue", item)

        threads = [
            threading.Thread(target=producer, args=(f"prod{i}", produced[i::3]))
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        consumer = construction.handle("consumer")
        drained = []
        while True:
            item = consumer.invoke("dequeue")
            if item == "QUEUE-EMPTY":
                break
            drained.append(item)
        assert sorted(drained) == sorted(produced)
