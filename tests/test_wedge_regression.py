"""Regression: the PR 9 checkpoint wedge must now be diagnosable.

PR 9's digest nondeterminism made replicas vote different digests for
the same checkpoint sequence, so no 2f+1 certificate could form, the
log window jammed at ``stable + log_window`` and the group wedged with
every counter frozen.  This file re-creates that failure shape on
purpose — :data:`ReplicaFaultMode.DIVERGENT` corrupts the checkpoint
digest deterministically on replicas 1 and 3, splitting the vote 2-vs-2
at f=1 — and asserts the PR 10 instruments see it:

* the ``checkpoint-starvation`` probe fires *critical* once execution
  runs a full log window past the stable checkpoint, and its report
  names both digest camps;
* the post-mortem doctor, fed only the flight dumps, attributes the
  divergence to exactly replicas {1, 3} vs {0, 2}.
"""

from __future__ import annotations

from repro.obs import Observability
from repro.obs.doctor import diagnose, merge_dumps
from repro.replication.pbft import ReplicaFaultMode
from repro.sim import FaultModeWindow, Scenario, run_scenario
from repro.sim.workloads import consensus_storm

CHECKPOINT_INTERVAL = 4  # log window defaults to 2x = 8


def _wedge(obs):
    return Scenario(
        name="pr9-wedge",
        clients=consensus_storm(12),
        faults=[
            FaultModeWindow(replica=1, mode=ReplicaFaultMode.DIVERGENT, start=0.0),
            FaultModeWindow(replica=3, mode=ReplicaFaultMode.DIVERGENT, start=0.0),
        ],
        seed=11,
        checkpoint_interval=CHECKPOINT_INTERVAL,
        deadline=2500.0,  # the group wedges; the run must still terminate
        obs=obs,
    )


def _run_wedge():
    obs = Observability()
    result = run_scenario(_wedge(obs))
    assert not result.completed, "the divergent wedge is supposed to stall"
    return obs, result


class TestWedgeRegression:
    def test_group_wedges_within_one_log_window(self):
        _obs, result = _run_wedge()
        nodes = result.service.nodes
        window = max(node.log_window for node in nodes)
        assert all(node.stable_checkpoint == 0 for node in nodes)
        # The primary stops assigning sequences at the high-water mark:
        # execution gets exactly one log window past the stable checkpoint.
        assert max(node.last_executed for node in nodes) == window

    def test_starvation_probe_fires_critical_and_names_both_camps(self):
        obs, result = _run_wedge()
        reports = []
        for _ in range(obs.health.fire_after):
            reports = obs.health.check(result.service)
        starvation = [r for r in reports if r.probe == "checkpoint-starvation"]
        assert len(starvation) == 1
        report = starvation[0]
        assert report.level == "critical"
        assert report.data["lag"] >= report.data["log_window"]
        camps = sorted(report.data["votes_by_digest"].values())
        assert camps == [
            ["replica-0", "replica-2"], ["replica-1", "replica-3"],
        ]

    def test_doctor_attributes_divergence_from_flight_dumps_alone(self):
        obs, _result = _run_wedge()
        diagnosis = diagnose(merge_dumps([obs.flight.dump()]))
        divergence = [
            f for f in diagnosis["findings"] if f["kind"] == "checkpoint-divergence"
        ]
        assert len(divergence) == 1
        finding = divergence[0]
        assert finding["level"] == "critical"
        assert finding["data"]["quorum"] == 3  # n=4, f=1
        camps = sorted(finding["data"]["votes_by_digest"].values())
        assert camps == [
            ["replica-0", "replica-2"], ["replica-1", "replica-3"],
        ]
        # The two camps disagree: two distinct digests, neither at quorum.
        digests = list(finding["data"]["votes_by_digest"])
        assert len(digests) == 2 and digests[0] != digests[1]

    def test_wedge_replay_is_deterministic(self):
        first_obs, _ = _run_wedge()
        second_obs, _ = _run_wedge()
        assert first_obs.flight.dump() == second_obs.flight.dump()
