"""Cross-shard scatter-gather: wildcard-name ``rdp``/``inp`` on a cluster.

The tentpole capability of the unified API: templates whose name field is
a wildcard/formal have no single owning shard, so the sharded backend
broadcasts the probe to every replica group (each answer is that group's
``f + 1``-voted reply), deterministically answers from the lowest shard
id with a match, and — for ``inp`` — performs the removal on the winning
shard only.  Wildcard ``cas`` stays out of scope and must say so usefully.
"""

import pytest

from repro.api import connect
from repro.cluster.routing import ExplicitRouting
from repro.errors import CrossShardError, OperationTimeoutError
from repro.sim import Scenario, run_scenario
from repro.sim.clients import ok_value, op_inp, op_out, op_rdp
from repro.sim.workloads import wildcard_probe_mix
from repro.policy.policy import AccessPolicy
from repro.policy.rules import Rule
from repro.tuples import ANY, Formal, entry, template


def open_policy() -> AccessPolicy:
    return AccessPolicy(
        [Rule(op, op) for op in ("out", "rdp", "inp", "cas")], name="scatter-open"
    )


def four_shard_space(**options):
    routing = ExplicitRouting({f"N{i}": i for i in range(4)})
    return connect(
        "sharded", policy=open_policy(), shards=4, routing=routing, **options
    )


class TestWildcardRdp:
    def test_no_match_returns_none(self):
        view = four_shard_space().bind("p1")
        assert view.rdp(template(ANY, ANY)) is None

    def test_lowest_matching_shard_wins(self):
        space = four_shard_space()
        view = space.bind("p1")
        view.out(entry("N3", "c"))
        view.out(entry("N1", "a"))
        view.out(entry("N2", "b"))
        assert view.rdp(template(ANY, ANY)) == entry("N1", "a")
        future = view.submit_rdp(template(ANY, ANY))
        space.network.run_until(lambda: future.done)
        assert future.result() == ("OK", entry("N1", "a"))
        assert future.shard == 1

    def test_formal_name_fields_scatter_too(self):
        view = four_shard_space().bind("p1")
        view.out(entry("N2", 7))
        match = view.rdp(template(Formal("name"), 7))
        assert match == entry("N2", 7)

    def test_read_is_not_destructive(self):
        space = four_shard_space()
        view = space.bind("p1")
        view.out(entry("N2", "b"))
        assert view.rdp(template(ANY, ANY)) == entry("N2", "b")
        assert len(space.snapshot()) == 1


class TestWildcardInp:
    def test_removes_from_winning_shard_only(self):
        space = four_shard_space()
        view = space.bind("p1")
        for shard in (1, 2, 3):
            view.out(entry(f"N{shard}", shard))
        taken = view.inp(template(ANY, ANY))
        assert taken == entry("N1", 1)
        # The other shards' tuples are untouched: removal never spans shards.
        remaining = set(space.snapshot())
        assert remaining == {entry("N2", 2), entry("N3", 3)}

    def test_drains_in_deterministic_shard_order(self):
        view = four_shard_space().bind("p1")
        for shard in (3, 0, 2, 1):
            view.out(entry(f"N{shard}", shard))
        drained = [view.inp(template(ANY, ANY)) for _ in range(5)]
        assert drained == [
            entry("N0", 0),
            entry("N1", 1),
            entry("N2", 2),
            entry("N3", 3),
            None,
        ]

    def test_concurrent_wildcard_takes_remove_exactly_once(self):
        space = four_shard_space()
        writer = space.bind("writer")
        writer.out(entry("N2", "only"))
        first = space.submit_inp(template(ANY, "only"), process="taker-1")
        second = space.submit_inp(template(ANY, "only"), process="taker-2")
        space.network.run_until(lambda: first.done and second.done)
        values = [ok_value(first.result()), ok_value(second.result())]
        assert sorted(values, key=repr) == sorted(
            [entry("N2", "only"), None], key=repr
        )
        assert len(space.snapshot()) == 0

    def test_blocking_wildcard_reads_work_and_time_out(self):
        view = four_shard_space().bind("p1")
        view.out(entry("N3", "late"))
        assert view.rd(template(ANY, "late"), timeout=500.0) == entry("N3", "late")
        assert view.in_(template(ANY, "late"), timeout=500.0) == entry("N3", "late")
        probe = template(ANY, "gone")
        with pytest.raises(OperationTimeoutError) as excinfo:
            view.in_(probe, timeout=40.0)
        assert repr(probe) in str(excinfo.value)


class TestWildcardCasIsTransactional:
    def test_routing_layer_still_refuses_but_points_at_transactions(self):
        # The low-level ShardMap cannot place a wildcard cas; its error now
        # directs callers to the unified API's transactional resolution.
        space = four_shard_space()
        shard_map = space.service.shard_map
        with pytest.raises(CrossShardError) as excinfo:
            shard_map.route("cas", (template(ANY, ANY), entry("N0", 0)))
        message = str(excinfo.value)
        assert "transact" in message
        assert "repro.api" in message

    def test_api_level_wildcard_cas_inserts_when_absent(self):
        view = four_shard_space().bind("p1")
        inserted, existing = view.cas(template(Formal("n"), ANY), entry("N0", 0))
        assert inserted and existing is None
        assert view.rdp(template("N0", Formal("v"))) == entry("N0", 0)

    def test_api_level_wildcard_cas_reports_any_shard_match(self):
        view = four_shard_space().bind("p1")
        view.out(entry("N3", "taken"))  # lives on a different shard than N0
        inserted, existing = view.cas(template(ANY, "taken"), entry("N0", "new"))
        assert not inserted
        assert existing == entry("N3", "taken")
        assert view.rdp(template("N0", Formal("v"))) is None

    def test_api_level_cross_shard_concrete_cas_commits(self):
        view = four_shard_space().bind("p1")
        inserted, existing = view.cas(template("N1", Formal("v")), entry("N2", "x"))
        assert inserted and existing is None
        view.out(entry("N1", "blocker"))
        inserted, existing = view.cas(template("N1", Formal("v")), entry("N3", "y"))
        assert not inserted
        assert existing == entry("N1", "blocker")


class TestDeterministicReplay:
    def _run(self, seed: int):
        space = four_shard_space(network_config=None)
        view = space.bind("p1")
        transcript = []
        for shard in (2, 1, 3):
            view.out(entry(f"N{shard}", shard))
        for _ in range(4):
            future = space.submit_inp(template(ANY, ANY), process="p1")
            space.network.run_until(lambda: future.done)
            transcript.append((ok_value(future.result()), future.shard))
        return transcript

    def test_wildcard_results_replay_identically(self):
        first = self._run(seed=0)
        second = self._run(seed=0)
        assert first == second
        assert [shard for _, shard in first[:3]] == [1, 2, 3]

    def test_scenario_with_wildcard_workload_replays_byte_identically(self):
        scenario = Scenario(
            name="scatter-replay",
            clients=wildcard_probe_mix(8, spread=4, ops_per_client=4, locality=0.5),
            shards=4,
            routing=ExplicitRouting({f"ITEM-{i}": i for i in range(4)}),
            seed=23,
        )
        result = run_scenario(scenario)
        assert result.completed
        replay = run_scenario(scenario)
        assert result.metrics.trace_text() == replay.metrics.trace_text()

    def test_program_level_wildcard_steps_complete(self):
        def producer():
            yield op_out(entry("N1", "job"))
            return "produced"

        def consumer():
            payload = None
            for _ in range(40):
                payload = yield op_inp(template(ANY, "job"))
                if ok_value(payload) is not None:
                    break
                yield op_rdp(template(ANY, ANY))
            return ok_value(payload)

        scenario = Scenario(
            name="scatter-program",
            clients=[("prod", producer), ("cons", consumer)],
            shards=4,
            routing=ExplicitRouting({f"N{i}": i for i in range(4)}),
            seed=3,
        )
        result = run_scenario(scenario)
        assert result.completed
        assert result.client_results()["cons"] == entry("N1", "job")
