"""Determinism guarantees of the scenario engine.

The single source of nondeterminism in a scenario is the network's seeded
RNG (latency jitter + drops); everything else — workload RNGs, fault
timing, client programs — is derived deterministically.  Therefore:

* same ``Scenario`` (same seed) ⇒ **byte-identical** metric/trace output;
* different seeds ⇒ different latency draws ⇒ different interleavings.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.replication.pbft import ReplicaFaultMode
from repro.sim import PartitionWindow, Scenario, run_scenario
from repro.sim.workloads import consensus_storm, kv_readwrite, queue_producer_consumer


def small_scenario(seed: int, *, clients=None) -> Scenario:
    return Scenario(
        name="determinism-probe",
        clients=clients if clients is not None else kv_readwrite(6, ops_per_client=3, seed=1),
        seed=seed,
    )


class TestSameSeedSameTrace:
    def test_trace_and_metrics_are_byte_identical(self):
        first = run_scenario(small_scenario(42))
        second = run_scenario(small_scenario(42))
        assert first.metrics.trace_text() == second.metrics.trace_text()
        assert first.metrics.trace_digest() == second.metrics.trace_digest()
        assert first.metrics.summary() == second.metrics.summary()
        assert first.metrics.throughput_series() == second.metrics.throughput_series()

    def test_replay_holds_under_faults_and_byzantine_replicas(self):
        scenario = Scenario(
            name="faulty-replay",
            clients=queue_producer_consumer(3, 3, items_per_producer=2),
            faults=(PartitionWindow(5.0, 20.0, left=[2], right=[3]),),
            replica_faults={1: ReplicaFaultMode.LYING},
            seed=9,
        )
        runs = [run_scenario(scenario) for _ in range(2)]
        assert runs[0].metrics.trace_text() == runs[1].metrics.trace_text()
        assert runs[0].completed and runs[1].completed

    def test_client_results_replay_identically(self):
        scenario = small_scenario(13, clients=consensus_storm(8))
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.client_results() == second.client_results()

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_property_any_seed_replays_byte_identically(self, seed):
        first = run_scenario(small_scenario(seed))
        second = run_scenario(small_scenario(seed))
        assert first.metrics.trace_text() == second.metrics.trace_text()


class TestDifferentSeedsDiverge:
    @settings(max_examples=5, deadline=None)
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=2**31 - 1),
            min_size=2,
            max_size=2,
            unique=True,
        )
    )
    def test_property_different_seeds_produce_different_interleavings(self, seeds):
        first = run_scenario(small_scenario(seeds[0]))
        second = run_scenario(small_scenario(seeds[1]))
        # Latency draws differ, so the completion interleaving (and hence
        # the trace) differs.  The *semantic* outcome still matches: all
        # operations complete.
        assert first.metrics.trace_text() != second.metrics.trace_text()
        assert first.completed and second.completed
        assert (
            first.metrics.operations_completed == second.metrics.operations_completed
        )

    def test_seed_is_the_only_knob_that_moved(self):
        base = small_scenario(1)
        other = dataclasses.replace(base, seed=2)
        assert base.network_config() != other.network_config()
        assert base.clients is other.clients
