"""Integration tests: the paper's algorithms over the replicated PEATS.

Section 4 claims the algorithms run unchanged on the Fig. 2 deployment;
these tests run them end to end on the simulated replicated service, with
Byzantine clients *and* Byzantine replicas at the same time.
"""

import pytest

from repro.consensus import DefaultConsensus, StrongConsensus, WeakConsensus, run_consensus
from repro.consensus.base import check_agreement, check_strong_validity
from repro.model.faults import bottom_forcing_byzantine, unjustified_deciding_byzantine
from repro.policy import (
    default_consensus_policy,
    lock_free_universal_policy,
    strong_consensus_policy,
    wait_free_universal_policy,
    weak_consensus_policy,
)
from repro.policy.library import BOTTOM
from repro.replication import ReplicatedPEATS
from repro.replication.pbft import ReplicaFaultMode
from repro.universal import LockFreeUniversalConstruction, WaitFreeUniversalConstruction
from repro.universal.emulated import counter_type, kv_store_type


class TestConsensusOverReplication:
    def test_weak_consensus(self):
        service = ReplicatedPEATS(weak_consensus_policy(), f=1)
        consensus = WeakConsensus(service.as_shared_space())
        assert consensus.propose("p1", "v1") == "v1"
        assert consensus.propose("p2", "v2") == "v1"
        assert len(set(service.replica_state_digests().values())) == 1

    def test_strong_consensus_with_byzantine_client_and_lying_replica(self):
        processes = list(range(4))
        service = ReplicatedPEATS(
            strong_consensus_policy(processes, 1),
            f=1,
            replica_faults={3: ReplicaFaultMode.LYING},
        )
        consensus = StrongConsensus(processes, 1, space=service.as_shared_space())
        proposals = {0: 1, 1: 1, 2: 1}
        run = run_consensus(
            consensus,
            proposals,
            byzantine={3: unjustified_deciding_byzantine(value=0, fake_supporters=(3,))},
        )
        assert run.terminated
        assert run.decision() == 1
        assert check_agreement(run.outcomes.values())
        assert check_strong_validity(run.outcomes.values(), proposals.values())
        correct_digests = {
            digest
            for replica, digest in service.replica_state_digests().items()
            if replica != "replica-3"
        }
        assert len(correct_digests) == 1

    def test_default_consensus_over_replication(self):
        processes = list(range(4))
        service = ReplicatedPEATS(default_consensus_policy(processes, 1), f=1)
        consensus = DefaultConsensus(processes, 1, space=service.as_shared_space())
        run = run_consensus(
            consensus,
            {0: "a", 1: "a", 2: "b"},
            byzantine={3: bottom_forcing_byzantine()},
        )
        assert run.terminated
        assert run.decision() == "a"

    def test_strong_consensus_survives_a_crashed_backup_replica(self):
        processes = list(range(4))
        service = ReplicatedPEATS(
            strong_consensus_policy(processes, 1),
            f=1,
            replica_faults={2: ReplicaFaultMode.CRASHED},
        )
        consensus = StrongConsensus(processes, 1, space=service.as_shared_space())
        run = run_consensus(consensus, {p: 0 for p in range(4)})
        assert run.terminated and run.decision() == 0


class TestUniversalConstructionsOverReplication:
    def test_lock_free_counter(self):
        service = ReplicatedPEATS(lock_free_universal_policy(), f=1)
        shared = service.as_shared_space()
        construction = LockFreeUniversalConstruction(counter_type(), space=shared.bind("w1"))
        handle = construction.handle("w1")
        tickets = [handle.invoke("increment") for _ in range(4)]
        assert tickets == [0, 1, 2, 3]

    def test_wait_free_kv_store_two_clients(self):
        processes = ["alice", "bob"]
        service = ReplicatedPEATS(wait_free_universal_policy(processes), f=1)
        shared = service.as_shared_space()
        construction = WaitFreeUniversalConstruction(kv_store_type(), processes, space=shared)
        alice = construction.handle("alice")
        bob = construction.handle("bob")
        alice.invoke("put", "k", "from-alice")
        assert bob.invoke("get", "k") == "from-alice"
        bob.invoke("put", "k", "from-bob")
        assert alice.invoke("get", "k") == "from-bob"

    def test_replicas_converge_after_universal_construction_traffic(self):
        service = ReplicatedPEATS(lock_free_universal_policy(), f=1)
        construction = LockFreeUniversalConstruction(
            counter_type(), space=service.as_shared_space().bind("w")
        )
        handle = construction.handle("w")
        for _ in range(5):
            handle.invoke("increment")
        assert len(set(service.replica_state_digests().values())) == 1


class TestViewChangeUnderLoad:
    def test_consensus_completes_after_primary_crash(self):
        processes = list(range(4))
        service = ReplicatedPEATS(
            strong_consensus_policy(processes, 1),
            f=1,
            replica_faults={0: ReplicaFaultMode.CRASHED},
            view_change_timeout=10.0,
        )
        consensus = StrongConsensus(processes, 1, space=service.as_shared_space())
        run = run_consensus(consensus, {p: 1 for p in range(4)})
        assert run.terminated and run.decision() == 1
        assert all(node.view >= 1 for node in service.correct_nodes())
