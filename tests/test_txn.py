"""repro.txn — non-blocking cross-shard atomic transactions.

The tentpole contract: ``Space.transact()`` stages any mix of
``out``/``rd``/``in``/``cas``/``nix`` legs and commits them at one
linearization point — on the local and single-group backends as one
ordered request, on the sharded cluster through a replicated-coordinator
atomic commit whose locks carry ordered expirations (no crashed client or
``f`` faulty replicas can wedge a name forever).  The fault suite pins
the claims the protocol is named for: commits survive coordinator-group
member crashes between prepare and decision, a lying participant cannot
forge or block a certificate, expired locks are force-resolved by any
bystander, and the whole machinery replays byte-identically under one
seed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import connect
from repro.cluster.routing import ExplicitRouting
from repro.errors import ReplicationError, TxnAbortedError
from repro.net import codec
from repro.obs import Observability
from repro.policy.policy import AccessPolicy
from repro.policy.rules import Rule
from repro.replication.crypto import digest
from repro.replication.messages import TxnAck, TxnDecision, TxnPrepare, TxnVote
from repro.replication.pbft import ReplicaFaultMode
from repro.sim import Scenario, run_scenario
from repro.sim.workloads import escrow_transfers
from repro.txn import NO_MATCH, TxnOutcome, outcome_from_payload
from repro.tuples import ANY, Formal, entry, template


def open_policy(operations=("out", "rdp", "inp", "cas")) -> AccessPolicy:
    return AccessPolicy([Rule(op, op) for op in operations], name="txn-open")


#: Explicit name → shard assignment: N0..N3 land on shards 0..3, and the
#: PAD name co-habits shard 1 (op-counter filler for the expiry tests).
ROUTING = ExplicitRouting({"N0": 0, "N1": 1, "N2": 2, "N3": 3, "PAD": 1})


def sharded_space(**options):
    return connect(
        "sharded", policy=open_policy(), shards=4, routing=ROUTING, **options
    )


def drive(space, future):
    space.network.run_until(lambda: future.done)
    assert future.done
    return future.result()


# ----------------------------------------------------------------------
# The Txn handle, backend-independent (local space)
# ----------------------------------------------------------------------


class TestTxnHandleLocal:
    def space(self):
        return connect("local", policy=open_policy())

    def test_commit_applies_every_leg_atomically(self):
        space = self.space()
        view = space.bind("p1")
        view.out(entry("A", 1))
        outcome = (
            space.transact("p1")
            .in_(template("A", Formal("v")))
            .out(entry("B", 2))
            .commit()
        )
        assert outcome.committed and bool(outcome)
        assert outcome.results == (entry("A", 1), entry("B", 2))
        assert set(space.snapshot()) == {entry("B", 2)}

    def test_abort_applies_nothing(self):
        space = self.space()
        outcome = (
            space.transact("p1")
            .in_(template("A", Formal("v")))  # no match: the whole txn aborts
            .out(entry("B", 2))
            .commit()
        )
        assert not outcome.committed
        assert outcome.reason == ("no-match", 0)
        assert space.snapshot() == ()
        with pytest.raises(TxnAbortedError):
            outcome.raise_for_abort()

    def test_rd_leg_is_a_non_destructive_precondition(self):
        space = self.space()
        view = space.bind("p1")
        view.out(entry("A", 1))
        outcome = (
            space.transact("p1").rd(template("A", ANY)).out(entry("B", 2)).commit()
        )
        assert outcome.results == (entry("A", 1), entry("B", 2))
        assert set(space.snapshot()) == {entry("A", 1), entry("B", 2)}

    def test_nix_leg_requires_absence(self):
        space = self.space()
        ok = space.transact("p1").nix(template("A", ANY)).out(entry("A", 1)).commit()
        assert ok.committed and ok.results == (None, entry("A", 1))
        again = space.transact("p1").nix(template("A", ANY)).out(entry("A", 2)).commit()
        assert not again.committed
        assert again.reason == ("match", 0, entry("A", 1))
        assert set(space.snapshot()) == {entry("A", 1)}

    def test_cas_leg_reports_insert_or_existing(self):
        space = self.space()
        first = space.transact("p1").cas(template("A", ANY), entry("A", 1)).commit()
        assert first.results == ((True, None),)
        second = space.transact("p1").cas(template("A", ANY), entry("A", 2)).commit()
        assert second.results == ((False, entry("A", 1)),)
        assert set(space.snapshot()) == {entry("A", 1)}

    def test_transfer_convenience_moves_or_raises(self):
        space = self.space()
        view = space.bind("p1")
        view.out(entry("A", "tok"))
        outcome = view.transfer(template("A", ANY), entry("B", "tok"))
        assert isinstance(outcome, TxnOutcome) and outcome.committed
        assert set(space.snapshot()) == {entry("B", "tok")}
        with pytest.raises(TxnAbortedError) as excinfo:
            view.transfer(template("A", ANY), entry("B", "again"))
        assert "no-match" in str(excinfo.value)

    def test_handle_is_one_shot(self):
        space = self.space()
        txn = space.transact("p1").out(entry("A", 1))
        assert txn.commit().committed
        with pytest.raises(ReplicationError):
            txn.out(entry("A", 2))

    def test_empty_transaction_is_rejected(self):
        with pytest.raises(ReplicationError):
            self.space().transact("p1").commit()

    def test_policy_denied_leg_aborts(self):
        # No inp grant: the in leg (checked as inp) refuses, atomically.
        space = connect("local", policy=open_policy(("out", "rdp", "cas")))
        view = space.bind("p1")
        view.out(entry("A", 1))
        outcome = (
            space.transact("p1").in_(template("A", ANY)).out(entry("B", 2)).commit()
        )
        assert not outcome.committed
        assert outcome.reason[0] == "policy-denied" and outcome.reason[1] == 0
        assert set(space.snapshot()) == {entry("A", 1)}


# ----------------------------------------------------------------------
# Single replicated group: one ordered txn_exec request
# ----------------------------------------------------------------------


class TestTxnReplicated:
    def test_transfer_commits_through_consensus(self):
        space = connect("replicated", policy=open_policy())
        view = space.bind("p1")
        view.out(entry("SRC", "tok"))
        outcome = view.transfer(template("SRC", ANY), entry("DST", "tok"))
        assert outcome.committed
        assert set(space.snapshot()) == {entry("DST", "tok")}

    def test_submit_commit_future_form(self):
        space = connect("replicated", policy=open_policy())
        space.bind("p1").out(entry("SRC", 1))
        txn = space.transact("p1").in_(template("SRC", ANY)).out(entry("DST", 1))
        future = txn.submit_commit()
        assert txn.submit_commit() is future  # idempotent seal
        payload = drive(space, future)
        assert outcome_from_payload(payload).committed

    def test_denied_leg_aborts_with_reason(self):
        space = connect("replicated", policy=open_policy(("out", "rdp", "cas")))
        outcome = space.transact("p1").in_(template("SRC", ANY)).commit()
        assert not outcome.committed and outcome.reason[0] == "policy-denied"


# ----------------------------------------------------------------------
# Sharded cluster: the replicated-coordinator atomic commit
# ----------------------------------------------------------------------


class TestTxnSharded:
    def test_cross_shard_transfer_commits(self):
        space = sharded_space()
        view = space.bind("p1")
        view.out(entry("N1", "tok"))
        outcome = view.transfer(template("N1", ANY), entry("N2", "tok"))
        assert outcome.committed
        assert outcome.results[0] == entry("N1", "tok")
        assert set(space.snapshot()) == {entry("N2", "tok")}

    def test_cross_shard_abort_changes_nothing(self):
        space = sharded_space()
        view = space.bind("p1")
        view.out(entry("N2", "keep"))
        with pytest.raises(TxnAbortedError):
            view.transfer(template("N1", ANY), entry("N3", "never"))
        assert set(space.snapshot()) == {entry("N2", "keep")}

    def test_three_shard_transaction_is_atomic(self):
        space = sharded_space()
        view = space.bind("p1")
        view.out(entry("N0", "a"))
        view.out(entry("N1", "b"))
        outcome = (
            space.transact("p1")
            .in_(template("N0", ANY))
            .in_(template("N1", ANY))
            .out(entry("N2", "merged"))
            .commit()
        )
        assert outcome.committed
        assert outcome.results == (entry("N0", "a"), entry("N1", "b"), entry("N2", "merged"))
        assert set(space.snapshot()) == {entry("N2", "merged")}

    def test_wildcard_nix_guards_every_shard(self):
        space = sharded_space()
        view = space.bind("p1")
        view.out(entry("N3", "occupied"))
        outcome = (
            space.transact("p1").nix(template(ANY, "occupied")).out(entry("N0", 1)).commit()
        )
        assert not outcome.committed
        assert outcome.reason == ("match", 0, entry("N3", "occupied"))
        gone = space.bind("p1").inp(template("N3", ANY))
        assert gone == entry("N3", "occupied")
        outcome = (
            space.transact("p1").nix(template(ANY, "occupied")).out(entry("N0", 1)).commit()
        )
        assert outcome.committed
        assert set(space.snapshot()) == {entry("N0", 1)}

    def test_single_shard_transaction_takes_the_fast_path(self):
        space = sharded_space()
        view = space.bind("p1")
        view.out(entry("N1", "x"))
        outcome = (
            space.transact("p1").in_(template("N1", ANY)).out(entry("N1", "y")).commit()
        )
        assert outcome.committed
        assert set(space.snapshot()) == {entry("N1", "y")}

    def test_stats_account_commits_and_aborts(self):
        space = sharded_space()
        view = space.bind("p1")
        view.out(entry("N1", "tok"))
        view.transfer(template("N1", ANY), entry("N2", "tok"))
        with pytest.raises(TxnAbortedError):
            view.transfer(template("N1", ANY), entry("N2", "again"))
        report = space.stats()["txn"]
        assert report["committed"] == 1
        assert report["aborted"] == {"no-match": 1}
        assert report["commit_latency"]["count"] == 1
        assert report["commit_latency"]["max"] > 0.0

    def test_concurrent_transfers_from_one_source_commit_exactly_one(self):
        space = sharded_space()
        space.bind("w").out(entry("N1", "tok"))
        first = space.submit_transfer(
            template("N1", ANY), entry("N2", "via-a"), process="a"
        )
        second = space.submit_transfer(
            template("N1", ANY), entry("N3", "via-b"), process="b"
        )
        space.network.run_until(lambda: first.done and second.done)
        outcomes = [
            outcome_from_payload(first.result()),
            outcome_from_payload(second.result()),
        ]
        assert sorted(o.committed for o in outcomes) == [False, True]
        assert len(space.snapshot()) == 1


# ----------------------------------------------------------------------
# Fault suite
# ----------------------------------------------------------------------


class TestCoordinatorFaults:
    def test_backup_crash_between_prepare_and_decision(self):
        space = sharded_space()
        view = space.bind("p1")
        view.out(entry("N1", "tok"))
        client = space.service.client("p1")
        future = space.submit_transfer(
            template("N1", ANY), entry("N2", "tok"), process="p1"
        )
        # The coordinator is the lowest participant shard (1).  Wait for
        # the first coordinator push (TxnPrepare executed and recorded),
        # then crash a coordinator-group backup: the decision has not
        # been ordered yet, and the group must finish without it.
        space.network.run_until(
            lambda: any(
                isinstance(push, TxnPrepare)
                for pile in client._txn_pushes.values()
                for _, push in pile
            )
        )
        assert not future.done
        space.service.group(1).nodes[3].fault_mode = ReplicaFaultMode.CRASHED
        payload = drive(space, future)
        assert outcome_from_payload(payload).committed
        assert set(space.snapshot()) == {entry("N2", "tok")}

    def test_coordinator_primary_crash_forces_a_view_change(self):
        space = sharded_space()
        view = space.bind("p1")
        view.out(entry("N1", "tok"))
        space.service.group(1).nodes[0].fault_mode = ReplicaFaultMode.CRASHED
        future = space.submit_transfer(
            template("N1", ANY), entry("N2", "tok"), process="p1"
        )
        payload = drive(space, future)
        assert outcome_from_payload(payload).committed
        assert set(space.snapshot()) == {entry("N2", "tok")}


class TestLyingParticipant:
    def test_lying_participant_replica_cannot_block_or_corrupt(self):
        space = sharded_space()
        space.service.group(2).nodes[1].fault_mode = ReplicaFaultMode.LYING
        view = space.bind("p1")
        view.out(entry("N1", "tok"))
        outcome = view.transfer(template("N1", ANY), entry("N2", "tok"))
        assert outcome.committed
        assert set(space.snapshot()) == {entry("N2", "tok")}

    def test_lying_coordinator_replica_cannot_forge_a_decision(self):
        space = sharded_space()
        space.service.group(1).nodes[2].fault_mode = ReplicaFaultMode.LYING
        view = space.bind("p1")
        view.out(entry("N1", "tok"))
        outcome = view.transfer(template("N1", ANY), entry("N3", "tok"))
        assert outcome.committed
        assert set(space.snapshot()) == {entry("N3", "tok")}

    def test_lying_replica_aborts_still_resolve_correctly(self):
        space = sharded_space()
        space.service.group(1).nodes[3].fault_mode = ReplicaFaultMode.LYING
        view = space.bind("p1")
        with pytest.raises(TxnAbortedError):
            view.transfer(template("N1", ANY), entry("N2", "never"))
        assert space.snapshot() == ()


class TestLockExpiry:
    def wedge(self, space, *, ttl):
        """Prepare + vote a transaction on shard 1 and abandon it: the
        lock on name N1 is held with no owner left to decide."""
        for group in space.service.groups:
            for node in group.nodes:
                node.application.txn_ttl_ops = ttl
        client = space.service.client("wedger")
        txn_id = client.mint_txn_id()
        group = space.service.group(1)
        prepared = client.submit(
            "txn_prepare", (txn_id, (1,)), replica_ids=group.replica_ids
        )
        space.network.run_until(lambda: prepared.done)
        assert prepared.result()[1][0] == "prepared"
        voted = client.submit(
            "txn_vote",
            (txn_id, 1, 1, (("in", template("N1", ANY)),)),
            replica_ids=group.replica_ids,
        )
        space.network.run_until(lambda: voted.done)
        assert voted.result()[1][1] == "yes"
        return client, txn_id

    def test_expired_lock_is_forced_and_the_blocked_op_proceeds(self):
        space = sharded_space()
        space.bind("seeder").out(entry("N1", "tok"))
        self.wedge(space, ttl=4)
        # The blocked inp keeps retrying through the lock-resolution
        # wrapper; its own refused attempts advance the shard's op
        # counter past the expiry, at which point it force-aborts the
        # wedged transaction at the (replicated) coordinator and takes
        # the tuple the abort released.
        future = space.submit_inp(template("N1", ANY), process="p2")
        payload = drive(space, future)
        assert payload == ("OK", entry("N1", "tok"))

    def test_late_decision_loses_to_the_forced_abort(self):
        space = sharded_space()
        space.bind("seeder").out(entry("N1", "tok"))
        client, txn_id = self.wedge(space, ttl=4)
        taken = space.submit_inp(template("N1", ANY), process="p2")
        drive(space, taken)
        # The owner comes back and asks to commit: the first ordered
        # decision (the forced abort) already won, and the coordinator
        # answers with the recorded outcome instead.
        evidence = ((1, "yes", tuple(space.service.group(1).replica_ids[:2])),)
        late = client.submit(
            "txn_decision",
            (txn_id, "commit", None, evidence),
            replica_ids=space.service.group(1).replica_ids,
        )
        space.network.run_until(lambda: late.done)
        status, value = late.result()
        assert value[0] == "decided" and value[1] == "abort"
        assert value[2] == ("expired",)

    def test_force_before_expiry_is_refused(self):
        space = sharded_space()
        space.bind("seeder").out(entry("N1", "tok"))
        client, txn_id = self.wedge(space, ttl=10_000)
        forced = client.submit(
            "txn_force", (txn_id,), replica_ids=space.service.group(1).replica_ids
        )
        space.network.run_until(lambda: forced.done)
        status, value = forced.result()
        assert value[0] == "not-expired"


class TestWaiterRearmAfterTxn:
    def test_blocked_readers_survive_a_wake_that_misses(self):
        # Two blocked takers, tuples arriving one at a time through
        # cross-shard transfers: each insert wakes both waiters, one
        # wins the re-probe, and the loser's waiter must re-arm — the
        # second transfer then completes it.
        space = sharded_space()
        seeder = space.bind("seeder")
        seeder.out(entry("N1", "a"))
        seeder.out(entry("N1", "b"))
        first = space.submit("in", (template("N2", ANY),), process="r1", timeout=30_000.0)
        second = space.submit("in", (template("N2", ANY),), process="r2", timeout=30_000.0)
        move_a = space.submit_transfer(template("N1", "a"), entry("N2", "a"), process="m")
        space.network.run_until(lambda: move_a.done)
        space.network.run_until(lambda: first.done or second.done)
        move_b = space.submit_transfer(template("N1", "b"), entry("N2", "b"), process="m")
        space.network.run_until(lambda: first.done and second.done)
        got = {first.result()[1], second.result()[1]}
        assert got == {entry("N2", "a"), entry("N2", "b")}
        assert space.snapshot() == ()

    def test_transactional_insert_wakes_a_blocked_reader_once(self):
        space = sharded_space()
        space.bind("seeder").out(entry("N1", "tok"))
        blocked = space.submit(
            "in", (template("N3", ANY),), process="r1", timeout=30_000.0
        )
        space.network.run_for(50.0)
        assert not blocked.done
        mover = space.submit_transfer(
            template("N1", ANY), entry("N3", "tok"), process="m"
        )
        space.network.run_until(lambda: mover.done and blocked.done)
        assert blocked.result() == ("OK", entry("N3", "tok"))


# ----------------------------------------------------------------------
# Conservation + determinism under transactional traffic
# ----------------------------------------------------------------------


def escrow_scenario(seed, *, n_clients=3, obs=None):
    # Hash routing co-locates the three TOKEN names; pin each family to
    # its own group so the transfers genuinely cross shards.
    return Scenario(
        name="txn-escrow",
        clients=escrow_transfers(
            n_clients, families=3, tokens=5, transfers_per_client=3, seed=seed
        ),
        shards=3,
        routing=ExplicitRouting({f"TOKEN-{family}": family for family in range(3)}),
        seed=seed,
        obs=obs,
    )


class TestConservation:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16), n_clients=st.integers(1, 4))
    def test_concurrent_transfers_conserve_the_token_pool(self, seed, n_clients):
        result = run_scenario(escrow_scenario(seed, n_clients=n_clients))
        assert result.completed
        assert not any(runner.failed for runner in result.engine.runners)
        tokens = [
            item
            for item in result.engine.space.snapshot()
            if str(item.fields[0]).startswith("TOKEN-")
        ]
        assert len(tokens) == 5


class TestReplayAndPassivity:
    def test_same_seed_txn_traffic_replays_byte_identically(self):
        first = run_scenario(escrow_scenario(11))
        second = run_scenario(escrow_scenario(11))
        assert first.metrics.trace_digest() == second.metrics.trace_digest()
        assert first.metrics.trace_text() == second.metrics.trace_text()

    def test_txn_instrumentation_is_passive(self):
        bare = run_scenario(escrow_scenario(11))
        observed = run_scenario(escrow_scenario(11, obs=Observability()))
        assert bare.metrics.trace_digest() == observed.metrics.trace_digest()


# ----------------------------------------------------------------------
# Wire shapes
# ----------------------------------------------------------------------


TXN_MESSAGES = [
    TxnPrepare(
        replica="s1-r0",
        client="alice",
        txn_id=("alice", 0),
        participants=(1, 2),
        expires_at=70,
    ),
    TxnVote(
        replica="s2-r1",
        client="alice",
        txn_id=("alice", 0),
        shard=2,
        vote="no",
        reason=("no-match", 1),
        pins_digest="p" * 64,
    ),
    TxnDecision(
        replica="s1-r2",
        client="alice",
        txn_id=("alice", 0),
        outcome="abort",
        reason=("expired",),
    ),
    TxnAck(
        replica="s2-r3",
        client="alice",
        txn_id=("alice", 0),
        shard=2,
        outcome="commit",
    ),
]


class TestTxnWire:
    @pytest.mark.parametrize("message", TXN_MESSAGES, ids=lambda m: type(m).__name__)
    def test_messages_roundtrip_with_stable_digest(self, message):
        decoded = codec.decode(codec.encode(message))
        assert decoded == message
        assert type(decoded) is type(message)
        assert digest(decoded) == digest(message)
        assert isinstance(decoded.txn_id, tuple)

    def test_push_certificates_demand_f_plus_1_distinct_replicas(self):
        space = sharded_space()
        client = space.service.client("alice")
        txn_id = ("alice", 0)
        decision = lambda replica: TxnDecision(
            replica=replica,
            client="alice",
            txn_id=txn_id,
            outcome="commit",
            reason=None,
        )
        client._on_txn_push("s1-r0", decision("s1-r0"))
        client._on_txn_push("s1-r0", decision("s1-r0"))  # duplicate sender
        assert client.txn_push_vote(txn_id, TxnDecision) is None
        client._on_txn_push("s1-r1", decision("s1-r1"))
        payload, replicas = client.txn_push_vote(txn_id, TxnDecision)
        assert payload.outcome == "commit"
        assert set(replicas) == {"s1-r0", "s1-r1"}

    def test_no_match_sentinel_is_wire_safe(self):
        assert codec.decode(codec.encode(NO_MATCH)) == NO_MATCH
