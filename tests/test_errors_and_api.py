"""Tests for the exception hierarchy and the top-level package API."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_every_library_error_derives_from_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            exception_class = getattr(errors, name)
            assert issubclass(exception_class, errors.ReproError), name

    def test_specific_parentage(self):
        assert issubclass(errors.MalformedTupleError, errors.TupleError)
        assert issubclass(errors.AccessDeniedError, errors.PolicyError)
        assert issubclass(errors.PolicyEvaluationError, errors.PolicyError)
        assert issubclass(errors.TerminationError, errors.ConsensusError)
        assert issubclass(errors.ResilienceError, errors.ConsensusError)
        assert issubclass(errors.AuthenticationError, errors.ReplicationError)
        assert issubclass(errors.QuorumError, errors.ReplicationError)

    def test_access_denied_error_carries_context(self):
        error = errors.AccessDeniedError("nope", process="p1", operation="cas")
        assert error.process == "p1"
        assert error.operation == "cas"
        assert "nope" in str(error)

    def test_catching_repro_error_catches_library_failures(self):
        from repro.consensus import StrongConsensus

        with pytest.raises(errors.ReproError):
            StrongConsensus(range(2), 1)  # resilience violation


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing name {name}"

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_key_classes_are_reachable_from_the_root(self):
        assert repro.PEATS is not None
        assert repro.WeakConsensus is not None
        assert repro.StrongConsensus is not None
        assert repro.DefaultConsensus is not None
        assert repro.LockFreeUniversalConstruction is not None
        assert repro.WaitFreeUniversalConstruction is not None
        assert repro.ReplicatedPEATS is not None

    def test_coordination_package_is_importable(self):
        from repro.coordination import Barrier, DistributedLock, LeaderElection

        assert Barrier and DistributedLock and LeaderElection
