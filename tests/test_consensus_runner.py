"""Tests for the consensus execution harnesses."""

import pytest

from repro.consensus import StrongConsensus, WeakConsensus, run_consensus, run_consensus_threaded
from repro.consensus.base import ConsensusOutcome, TerminationCondition, require_resilience
from repro.consensus.runner import ConsensusRun
from repro.errors import ResilienceError
from repro.model.faults import silent_byzantine
from repro.model.scheduler import adversarial_schedule, random_schedule


class TestConsensusRun:
    def test_decided_values_and_agreement(self):
        run = ConsensusRun(
            outcomes={
                "a": ConsensusOutcome("a", 1, 5),
                "b": ConsensusOutcome("b", 2, 5),
            },
            rounds=3,
            terminated=True,
        )
        assert run.decided_values == {5}
        assert run.agreement
        assert run.decision() == 5

    def test_decision_raises_on_disagreement(self):
        run = ConsensusRun(
            outcomes={
                "a": ConsensusOutcome("a", 1, 5),
                "b": ConsensusOutcome("b", 2, 6),
            },
            rounds=1,
            terminated=True,
        )
        assert not run.agreement
        with pytest.raises(AssertionError):
            run.decision()

    def test_non_terminated_outcomes_ignored_in_decided_values(self):
        run = ConsensusRun(
            outcomes={"a": ConsensusOutcome("a", 1, None, terminated=False)},
            rounds=1,
            terminated=False,
        )
        assert run.decided_values == set()
        assert run.decision() is None


class TestDeterministicRunner:
    def test_is_reproducible_with_a_seeded_schedule(self):
        decisions = []
        for _ in range(3):
            consensus = StrongConsensus(range(4), 1)
            run = run_consensus(
                consensus, {0: 0, 1: 1, 2: 0, 3: 1}, schedule=random_schedule(1234)
            )
            decisions.append(run.decision())
        assert len(set(decisions)) == 1

    def test_reports_errors_from_misbehaving_generators(self):
        def exploding(consensus, process):
            raise RuntimeError("boom")
            yield  # pragma: no cover

        consensus = WeakConsensus.create()
        run = run_consensus(consensus, {"p1": 1}, byzantine={"bad": exploding})
        assert run.terminated  # the correct process still decided
        assert "bad" in run.errors

    def test_errors_from_correct_processes_mark_non_termination(self):
        class Broken(WeakConsensus):
            def propose_steps(self, process, value):
                raise RuntimeError("broken algorithm")
                yield  # pragma: no cover

        run = run_consensus(Broken(), {"p1": 1})
        assert not run.terminated
        assert "p1" in run.errors

    def test_max_rounds_marks_victims_as_non_terminated(self):
        consensus = StrongConsensus(range(4), 1)
        run = run_consensus(consensus, {0: 0}, max_rounds=10)
        assert not run.terminated
        assert not run.outcomes[0].terminated
        assert run.rounds == 10

    def test_iteration_counts_are_recorded(self):
        consensus = StrongConsensus(range(4), 1)
        run = run_consensus(consensus, {p: 1 for p in range(4)})
        assert all(outcome.iterations >= 0 for outcome in run.outcomes.values())

    def test_adversarial_schedule_starving_a_victim_still_terminates(self):
        # The victim is scheduled rarely, but t-threshold liveness only needs
        # n - t participants overall, and the victim eventually reads the
        # DECISION tuple.
        consensus = StrongConsensus(range(4), 1)
        run = run_consensus(
            consensus,
            {p: 1 for p in range(4)},
            schedule=adversarial_schedule([0], starve_rounds=10),
            max_rounds=2000,
        )
        assert run.terminated


class TestThreadedRunner:
    def test_byzantine_callable_runs_in_thread(self):
        seen = []

        def behaviour(consensus, process):
            seen.append(process)

        consensus = WeakConsensus.create()
        run = run_consensus_threaded(consensus, {"p1": 1}, byzantine={"byz": behaviour})
        assert run.terminated
        assert seen == ["byz"]

    def test_byzantine_exception_is_collected(self):
        def behaviour(consensus, process):
            raise RuntimeError("byzantine crash")

        consensus = WeakConsensus.create()
        run = run_consensus_threaded(consensus, {"p1": 1}, byzantine={"byz": behaviour})
        assert run.terminated
        assert "byz" in run.errors


class TestResilienceHelper:
    def test_require_resilience(self):
        require_resilience(4, 1)
        require_resilience(9, 2, k=3)
        with pytest.raises(ResilienceError):
            require_resilience(3, 1)
        with pytest.raises(ResilienceError):
            require_resilience(8, 2, k=3)
        with pytest.raises(ResilienceError):
            require_resilience(4, -1)

    def test_termination_condition_labels(self):
        assert TerminationCondition.WAIT_FREE.value == "wait-free"
        assert WeakConsensus.termination is TerminationCondition.WAIT_FREE
        assert StrongConsensus.termination is TerminationCondition.T_THRESHOLD
