"""Flight recorder: ring-buffer mechanics, dump shape, end-to-end events.

The recorder is the black box of PR 10 — per-node bounded rings of typed
events, strictly passive (no clock reads, no RNG), so the determinism
tests at the bottom pin that a fully instrumented replay stays
byte-identical with the bare one.
"""

from __future__ import annotations

import pytest

from repro.api import connect
from repro.obs import (
    EVENT_KINDS,
    FlightRecorder,
    NullFlightRecorder,
    NULL_FLIGHT,
    Observability,
    NULL_HEALTH,
)
from repro.policy import AccessPolicy, Rule
from repro.sim import Scenario, run_scenario
from repro.sim.workloads import consensus_storm
from repro.tuples import entry, template, Formal


def open_policy() -> AccessPolicy:
    return AccessPolicy(
        [Rule(op, op) for op in ("out", "rdp", "inp", "cas")], name="flight-test"
    )


# ----------------------------------------------------------------------
# Ring-buffer mechanics
# ----------------------------------------------------------------------


class TestRingBuffer:
    def test_unknown_kind_is_rejected(self):
        recorder = FlightRecorder()
        with pytest.raises(ValueError):
            recorder.record("not-a-kind", "n", 0.0)

    def test_events_carry_kind_time_key_details_and_seq(self):
        recorder = FlightRecorder()
        recorder.record("submit", "c1", 1.5, key=("c1", 0), operation="out")
        (event,) = recorder.events("c1")
        assert event["kind"] == "submit"
        assert event["t"] == 1.5
        assert event["key"] == ("c1", 0)  # dumps JSON-ify; in-memory keeps the key
        assert event["operation"] == "out"
        assert event["seq"] == 0

    def test_ring_wraps_and_accounts_drops(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(7):
            recorder.record("execute", "r0", float(index), sequence=index)
        events = recorder.events("r0")
        assert len(events) == 4
        # Oldest three were overwritten; survivors are in seq order.
        assert [event["seq"] for event in events] == [3, 4, 5, 6]
        assert [event["sequence"] for event in events] == [3, 4, 5, 6]
        dump = recorder.dump_node("r0")
        assert dump["recorded"] == 7
        assert dump["dropped"] == 3
        assert dump["capacity"] == 4

    def test_per_node_rings_are_independent(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record("execute", "a", 0.0, sequence=1)
        for index in range(3):
            recorder.record("execute", "b", float(index), sequence=index)
        assert len(recorder.events("a")) == 1
        assert len(recorder.events("b")) == 2
        assert recorder.nodes() == ["a", "b"]
        stats = recorder.statistics()
        assert stats == {"nodes": 2, "retained": 3, "recorded": 4, "dropped": 1}

    def test_dump_is_deterministic_for_identical_histories(self):
        def build():
            recorder = FlightRecorder(capacity=8)
            for index in range(12):
                recorder.record(
                    "msg-send", f"r{index % 3}", float(index), type="Prepare"
                )
            return recorder.dump()

        assert build() == build()

    def test_clear_resets_everything(self):
        recorder = FlightRecorder(capacity=2)
        for index in range(5):
            recorder.record("execute", "r0", float(index), sequence=index)
        recorder.clear()
        assert recorder.nodes() == []
        assert recorder.statistics() == {
            "nodes": 0, "retained": 0, "recorded": 0, "dropped": 0,
        }

    def test_null_recorder_is_disabled_and_inert(self):
        assert NULL_FLIGHT.enabled is False
        assert isinstance(NULL_FLIGHT, NullFlightRecorder)
        NULL_FLIGHT.record("execute", "r0", 0.0)
        assert NULL_FLIGHT.nodes() == []
        assert NULL_FLIGHT.dump() == {"capacity": 0, "nodes": {}}

    def test_event_kinds_is_a_closed_frozen_set(self):
        assert isinstance(EVENT_KINDS, frozenset)
        for kind in ("msg-send", "checkpoint-vote", "view-change", "policy-deny"):
            assert kind in EVENT_KINDS


# ----------------------------------------------------------------------
# End-to-end recording through the real stack
# ----------------------------------------------------------------------


class TestEndToEnd:
    def test_replicated_request_leaves_consensus_breadcrumbs(self):
        obs = Observability()
        space = connect("replicated", policy=open_policy(), f=1, obs=obs)
        space.out(entry("k", 1), process="p0")
        assert space.rdp(template("k", Formal("v")), process="p0") == entry("k", 1)
        kinds = {
            event["kind"]
            for node in obs.flight.nodes()
            for event in obs.flight.events(node)
        }
        assert {"submit", "msg-send", "msg-recv", "execute", "reply", "complete"} <= kinds
        # Every node that spoke has a ring: the client plus four replicas.
        assert len(obs.flight.nodes()) == 5

    def test_sharded_submit_records_route_events(self):
        obs = Observability()
        space = connect("sharded", policy=open_policy(), shards=2, f=1, obs=obs)
        space.out(entry("a", 1), process="p0")
        routes = [
            event
            for node in obs.flight.nodes()
            for event in obs.flight.events(node)
            if event["kind"] == "route"
        ]
        assert routes and all(event["shard"] in (0, 1) for event in routes)

    def test_space_stats_surface_flight_and_health(self):
        obs = Observability()
        space = connect("replicated", policy=open_policy(), f=1, obs=obs)
        space.out(entry("k", 1), process="p0")
        stats = space.stats()
        assert stats["flight"]["recorded"] > 0
        assert stats["flight"]["dropped"] == 0
        assert stats["health"] == []  # healthy run: no active reports

    def test_flight_events_use_the_virtual_clock(self):
        obs = Observability()
        space = connect("replicated", policy=open_policy(), f=1, obs=obs)
        space.out(entry("k", 1), process="p0")
        for node in obs.flight.nodes():
            times = [event["t"] for event in obs.flight.events(node)]
            assert times == sorted(times)  # per-node rings are append-ordered


# ----------------------------------------------------------------------
# Determinism: recording must not perturb the replay
# ----------------------------------------------------------------------


def _storm(obs):
    return Scenario(
        name="flight-determinism", clients=consensus_storm(8), seed=29, obs=obs
    )


def test_trace_digest_identical_with_flight_and_health_enabled():
    bare = run_scenario(_storm(None))
    instrumented = run_scenario(_storm(Observability()))
    tracer_only = run_scenario(
        _storm(Observability(flight=NULL_FLIGHT, health=NULL_HEALTH))
    )
    assert bare.completed and instrumented.completed and tracer_only.completed
    assert bare.metrics.trace_digest() == instrumented.metrics.trace_digest()
    assert bare.metrics.trace_digest() == tracer_only.metrics.trace_digest()


def test_flight_dump_is_identical_across_same_seed_replays():
    first_obs, second_obs = Observability(), Observability()
    run_scenario(_storm(first_obs))
    run_scenario(_storm(second_obs))
    assert first_obs.flight.dump() == second_obs.flight.dump()
