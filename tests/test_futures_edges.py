"""Edge paths of the backend-agnostic :class:`OperationFuture`.

The future is the currency of the unified API and, since the real
transports arrived, also a cross-thread waiter: completion can happen on
a reactor thread while a plain thread blocks in ``wait()`` or an asyncio
coroutine awaits the :meth:`~repro.futures.OperationFuture.as_asyncio`
mirror.  These tests pin the corners: callbacks that raise, ``result()``
after an exception, double-resolution, and the bridge's timeout and
cancellation behaviour.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import PendingOperationError
from repro.futures import OperationFuture


def make_future() -> OperationFuture:
    return OperationFuture(operation="rdp", submitted_at=10.0, request_id=7)


# ----------------------------------------------------------------------
# Resolution basics
# ----------------------------------------------------------------------


def test_result_before_completion_raises_pending():
    future = make_future()
    with pytest.raises(PendingOperationError):
        future.result()
    assert future.latency is None


def test_result_after_exception_reraises_every_time():
    future = make_future()
    boom = ValueError("boom")
    future._complete(11.0, exception=boom)
    for _ in range(2):  # re-raising is repeatable, not one-shot
        with pytest.raises(ValueError):
            future.result()
    assert future.exception is boom
    assert future.latency == pytest.approx(1.0)


def test_double_resolution_is_rejected_first_wins():
    future = make_future()
    future._complete(11.0, result=("OK", 1))
    future._complete(99.0, result=("OK", 2))
    future._complete(99.0, exception=RuntimeError("late failure"))
    assert future.result() == ("OK", 1)
    assert future.completed_at == 11.0
    assert future.exception is None


def test_callbacks_fire_once_even_when_resolution_races():
    future = make_future()
    calls = []
    future.add_done_callback(lambda f: calls.append(f.result()))
    future._complete(11.0, result=("OK", "first"))
    future._complete(12.0, result=("OK", "second"))
    assert calls == [("OK", "first")]


def test_callback_added_after_completion_fires_immediately():
    future = make_future()
    future._complete(11.0, result=("OK", 1))
    calls = []
    future.add_done_callback(lambda f: calls.append(True))
    assert calls == [True]


def test_raising_callback_propagates_but_future_stays_resolved():
    future = make_future()

    def bad_callback(f):
        raise RuntimeError("callback exploded")

    future.add_done_callback(bad_callback)
    with pytest.raises(RuntimeError, match="callback exploded"):
        future._complete(11.0, result=("OK", 1))
    # The resolution itself stuck: state is consistent for later readers.
    assert future.done
    assert future.result() == ("OK", 1)
    # ... and the real transports' reactors contain such callbacks via
    # RealTransport._guarded, so one bad callback cannot stall delivery
    # (covered in test_net_transports.py).


def test_raising_callback_does_not_strand_later_waiters():
    """Callback isolation: one bad callback must not skip the rest — a
    ``wait()`` registered after it would otherwise sleep forever."""
    future = make_future()
    fired = []

    def bad_callback(f):
        raise RuntimeError("first callback exploded")

    future.add_done_callback(bad_callback)
    future.add_done_callback(lambda f: fired.append("waiter"))
    with pytest.raises(RuntimeError, match="first callback exploded"):
        future._complete(11.0, result=("OK", 1))
    assert fired == ["waiter"]
    assert future.wait(timeout=0.0) is True


# ----------------------------------------------------------------------
# Cross-thread waiting
# ----------------------------------------------------------------------


def test_wait_returns_immediately_when_done():
    future = make_future()
    future._complete(11.0, result=("OK", 1))
    assert future.wait(timeout=0.0) is True


def test_wait_times_out_false_then_succeeds():
    future = make_future()
    assert future.wait(timeout=0.01) is False

    timer = threading.Timer(0.05, lambda: future._complete(12.0, result=("OK", 2)))
    timer.start()
    try:
        assert future.wait(timeout=5.0) is True
        assert future.result() == ("OK", 2)
    finally:
        timer.cancel()


def test_wait_from_thread_while_completing_on_another():
    future = make_future()
    results = []

    def waiter():
        results.append(future.wait(timeout=5.0))

    threads = [threading.Thread(target=waiter) for _ in range(4)]
    for thread in threads:
        thread.start()
    future._complete(11.0, result=("OK", 3))
    for thread in threads:
        thread.join(timeout=5.0)
    assert results == [True, True, True, True]


# ----------------------------------------------------------------------
# The asyncio bridge
# ----------------------------------------------------------------------


def test_as_asyncio_resolves_with_result():
    async def scenario():
        future = make_future()
        mirror = future.as_asyncio()
        asyncio.get_running_loop().call_soon(
            lambda: future._complete(11.0, result=("OK", 4))
        )
        return await asyncio.wait_for(mirror, timeout=5.0)

    assert asyncio.run(scenario()) == ("OK", 4)


def test_as_asyncio_resolves_with_exception():
    async def scenario():
        future = make_future()
        mirror = future.as_asyncio()
        future._complete(11.0, exception=ValueError("replicated boom"))
        with pytest.raises(ValueError, match="replicated boom"):
            await asyncio.wait_for(mirror, timeout=5.0)

    asyncio.run(scenario())


def test_as_asyncio_timeout_leaves_operation_in_flight():
    async def scenario():
        future = make_future()
        mirror = future.as_asyncio()
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(asyncio.shield(mirror), timeout=0.01)
        assert not future.done
        future._complete(11.0, result=("OK", 5))
        return await asyncio.wait_for(mirror, timeout=5.0)

    assert asyncio.run(scenario()) == ("OK", 5)


def test_as_asyncio_cancellation_detaches_the_mirror():
    async def scenario():
        future = make_future()
        mirror = future.as_asyncio()
        mirror.cancel()
        await asyncio.sleep(0)
        # Late completion must not blow up on the cancelled mirror …
        future._complete(11.0, result=("OK", 6))
        await asyncio.sleep(0)
        assert mirror.cancelled()
        # … and the operation's own result is unaffected.
        assert future.result() == ("OK", 6)

    asyncio.run(scenario())


def test_as_asyncio_from_foreign_thread_resolution():
    async def scenario():
        future = make_future()
        mirror = future.as_asyncio()
        thread = threading.Timer(0.02, lambda: future._complete(11.0, result=("OK", 7)))
        thread.start()
        try:
            return await asyncio.wait_for(mirror, timeout=5.0)
        finally:
            thread.cancel()

    assert asyncio.run(scenario()) == ("OK", 7)


def test_as_asyncio_outside_a_loop_requires_explicit_loop():
    future = make_future()
    with pytest.raises(RuntimeError):
        future.as_asyncio()
