"""The tree lints itself: ``python -m repro.lint src`` must exit 0.

Also exercises the CLI surface (exit codes, JSON report, rule listing)
and — when mypy happens to be installed — the strict-subset type gate
that CI runs (``mypy --config-file mypy.ini``).
"""

import json
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.lint import LintEngine, json_report, lint_paths, text_report

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"


def run_cli(*args):
    env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
    )


class TestSelfCheck:
    def test_src_tree_is_clean(self):
        violations = lint_paths(str(SRC))
        assert violations == [], text_report(violations)

    def test_cli_exits_zero_on_src(self):
        result = run_cli("src")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 violations" in result.stdout

    def test_cli_exits_one_on_violations(self):
        result = run_cli("--select", "RL001", str(FIXTURES / "rl001_bad.py"))
        assert result.returncode == 1
        assert "RL001" in result.stdout

    def test_cli_json_report(self):
        result = run_cli(
            "--select", "RL001", "--format", "json", str(FIXTURES / "rl001_bad.py")
        )
        payload = json.loads(result.stdout)
        assert payload["count"] == len(payload["violations"]) > 0
        first = payload["violations"][0]
        assert {"rule", "path", "line", "message"} <= set(first)

    def test_cli_lists_all_rules(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert rule_id in result.stdout

    def test_ignore_flag_drops_a_rule(self):
        engine = LintEngine(ignore=["RL001"])
        assert engine.lint_paths([FIXTURES / "rl001_bad.py"]) == []

    def test_json_report_is_stable(self):
        violations = LintEngine(select=["RL001"]).lint_paths(
            [FIXTURES / "rl001_bad.py"]
        )
        assert json.loads(json_report(violations))["count"] == len(violations)


class TestTypeGate:
    @pytest.mark.skipif(
        shutil.which("mypy") is None, reason="mypy not installed (CI-only gate)"
    )
    def test_strict_subset_passes_mypy(self):
        result = subprocess.run(
            ["mypy", "--config-file", "mypy.ini"],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 0, result.stdout + result.stderr
