"""Backend-conformance suite for the unified API (repro.api).

The same tuple-space programs run — via ``connect()`` — against all three
deployment shapes, and every observable result must be identical: return
values, denial behaviour, blocking-read semantics, the timeout exception,
and the future (``submit_*``) forms.  A hypothesis property generates
random operation sequences and checks observable equivalence wholesale.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import BoundSpace, OperationFuture, connect
from repro.cluster.routing import ExplicitRouting
from repro.errors import (
    AccessDeniedError,
    OperationTimeoutError,
    TupleSpaceError,
)
from repro.peo.base import DeniedResult
from repro.policy.policy import AccessPolicy
from repro.policy.rules import Rule
from repro.tuples import ANY, entry, template

BACKENDS = ("local", "replicated", "sharded")

#: Blocking-read budgets per backend, in that backend's time unit
#: (wall-clock seconds locally, virtual milliseconds on the simulated
#: deployments).
TIMEOUTS = {"local": 0.05, "replicated": 40.0, "sharded": 40.0}


def open_policy() -> AccessPolicy:
    return AccessPolicy(
        [Rule(op, op) for op in ("out", "rdp", "inp", "cas")], name="api-open"
    )


def no_removal_policy() -> AccessPolicy:
    """Reads and writes allowed, destructive reads denied (fail-safe)."""
    return AccessPolicy(
        [Rule(op, op) for op in ("out", "rdp", "cas")], name="api-no-removal"
    )


def make_space(backend: str, policy_factory=open_policy):
    if backend == "local":
        return connect("local", policy=policy_factory())
    if backend == "replicated":
        return connect("replicated", policy=policy_factory(), f=1)
    return connect("sharded", policy=policy_factory(), shards=2, f=1)


def run_on_backend(backend, program, policy_factory=open_policy):
    """Build a fresh deployment and run ``program`` against a bound view."""
    space = make_space(backend, policy_factory)
    return program(space.bind("p1"), backend)


def assert_identical_across_backends(program, policy_factory=open_policy):
    observed = {
        backend: run_on_backend(backend, program, policy_factory)
        for backend in BACKENDS
    }
    reference = observed["local"]
    for backend, results in observed.items():
        assert results == reference, f"{backend} diverged: {results} != {reference}"


class TestSameProgramEveryBackend:
    def test_out_rdp_inp_roundtrip(self):
        def program(view: BoundSpace, backend: str):
            results = []
            results.append(view.out(entry("A", 1)))
            results.append(view.out(entry("A", 2)))
            results.append(view.rdp(template("A", ANY)))
            results.append(view.inp(template("A", ANY)))
            results.append(view.inp(template("A", ANY)))
            results.append(view.inp(template("A", ANY)))
            return results

        assert_identical_across_backends(program)

    def test_cas_decides_once(self):
        def program(view: BoundSpace, backend: str):
            first = view.cas(template("D", ANY), entry("D", "v1"))
            second = view.cas(template("D", ANY), entry("D", "v2"))
            return [first, second, view.rdp(template("D", ANY))]

        assert_identical_across_backends(program)

    def test_blocking_reads_return_produced_tuples(self):
        def program(view: BoundSpace, backend: str):
            view.out(entry("B", "ready"))
            seen = view.rd(template("B", ANY), timeout=TIMEOUTS[backend])
            taken = view.in_(template("B", ANY), timeout=TIMEOUTS[backend])
            return [seen, taken, view.rdp(template("B", ANY))]

        assert_identical_across_backends(program)

    def test_lock_program_runs_unmodified(self):
        """The acceptance-criterion program: one mutex token, two workers."""

        def program(view: BoundSpace, backend: str):
            alice = view.space.bind("alice")
            bob = view.space.bind("bob")
            results = []
            results.append(alice.out(entry("LOCK", "free")))
            token = alice.inp(template("LOCK", "free"))
            results.append(token)
            results.append(bob.inp(template("LOCK", "free")))  # held: None
            results.append(alice.out(entry("LOCK", "free")))
            handover = bob.in_(template("LOCK", ANY), timeout=TIMEOUTS[backend])
            results.append(handover)
            return results

        assert_identical_across_backends(program)


class TestUniformTimeoutModel:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rd_timeout_raises_the_shared_exception(self, backend):
        view = make_space(backend).bind("p1")
        probe = template("NOPE", ANY)
        with pytest.raises(OperationTimeoutError) as excinfo:
            view.rd(probe, timeout=TIMEOUTS[backend])
        assert repr(probe) in str(excinfo.value)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_in_timeout_raises_the_shared_exception(self, backend):
        view = make_space(backend).bind("p1")
        with pytest.raises(OperationTimeoutError):
            view.in_(template("NOPE", ANY), timeout=TIMEOUTS[backend])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_deprecated_builtin_timeout_still_catches(self, backend):
        view = make_space(backend).bind("p1")
        with pytest.raises(TimeoutError):
            view.rd(template("NOPE", ANY), timeout=TIMEOUTS[backend])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_timeout_is_a_library_error_too(self, backend):
        view = make_space(backend).bind("p1")
        with pytest.raises(TupleSpaceError):
            view.rd(template("NOPE", ANY), timeout=TIMEOUTS[backend])


class TestUniformDenialModel:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_denied_inp_reads_as_no_match(self, backend):
        view = make_space(backend, no_removal_policy).bind("p1")
        assert view.out(entry("A", 1)) is True
        assert view.inp(template("A", ANY)) is None
        assert view.rdp(template("A", ANY)) == entry("A", 1)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_denied_blocking_in_raises_access_denied(self, backend):
        view = make_space(backend, no_removal_policy).bind("p1")
        view.out(entry("A", 1))
        with pytest.raises(AccessDeniedError):
            view.in_(template("A", ANY), timeout=TIMEOUTS[backend])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_denied_out_is_falsy(self, backend):
        def reads_only() -> AccessPolicy:
            return AccessPolicy([Rule("rdp", "rdp")], name="api-reads-only")

        view = make_space(backend, reads_only).bind("p1")
        result = view.out(entry("A", 1))
        assert not result
        assert isinstance(result, DeniedResult)
        assert view.rdp(template("A", ANY)) is None


class TestFutureFormEveryBackend:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_submit_out_resolves_with_payload_and_callback(self, backend):
        space = make_space(backend)
        view = space.bind("p1")
        seen = []
        future = view.submit_out(entry("A", 1), on_complete=seen.append)
        assert isinstance(future, OperationFuture)
        if backend != "local":
            space.network.run_until(lambda: future.done)
        assert future.done
        assert future.result() == ("OK", True)
        assert seen == [future]
        assert future.latency is not None and future.latency >= 0.0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_submit_cas_and_probe_payloads(self, backend):
        space = make_space(backend)
        view = space.bind("p1")
        futures = [
            view.submit_cas(template("D", ANY), entry("D", 9)),
            view.submit_rdp(template("D", ANY)),
        ]
        if backend != "local":
            for future in futures:
                space.network.run_until(lambda: future.done)
        assert futures[0].result() == ("OK", (True, None))
        assert futures[1].result() == ("OK", entry("D", 9))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_submit_rd_resolves_when_tuple_exists(self, backend):
        space = make_space(backend)
        view = space.bind("p1")
        view.out(entry("B", "x"))
        future = view.submit_rd(template("B", ANY), timeout=TIMEOUTS[backend])
        if backend != "local":
            space.network.run_until(lambda: future.done)
        assert future.result() == ("OK", entry("B", "x"))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_submit_rd_times_out_with_the_shared_exception(self, backend):
        space = make_space(backend)
        future = space.submit_rd(
            template("NOPE", ANY), process="p1", timeout=TIMEOUTS[backend]
        )
        if backend != "local":
            space.network.run_until(lambda: future.done)
        assert isinstance(future.exception, OperationTimeoutError)


# ----------------------------------------------------------------------
# Hypothesis: observable equivalence over random operation sequences
# ----------------------------------------------------------------------

_names = st.sampled_from(["A", "B", "C"])
_values = st.integers(min_value=0, max_value=3)


def _operations():
    return st.lists(
        st.one_of(
            st.tuples(st.just("out"), _names, _values),
            st.tuples(st.just("rdp"), _names, _values),
            st.tuples(st.just("inp"), _names, _values),
            st.tuples(st.just("cas"), _names, _values),
        ),
        min_size=1,
        max_size=8,
    )


def _apply(view: BoundSpace, operations) -> list:
    observed = []
    for kind, name, value in operations:
        if kind == "out":
            observed.append(("out", bool(view.out(entry(name, value)))))
        elif kind == "rdp":
            observed.append(("rdp", view.rdp(template(name, ANY))))
        elif kind == "inp":
            observed.append(("inp", view.inp(template(name, ANY))))
        else:
            inserted, existing = view.cas(template(name, ANY), entry(name, value))
            observed.append(("cas", bool(inserted), existing))
    return observed


@settings(max_examples=12, deadline=None)
@given(operations=_operations())
def test_random_programs_observably_equivalent(operations):
    """Any probe sequence yields identical results and final contents."""
    outcomes = {}
    for backend in BACKENDS:
        view = make_space(backend).bind("p1")
        results = _apply(view, operations)
        contents = sorted(view.snapshot(), key=repr)
        outcomes[backend] = (results, contents)
    assert outcomes["replicated"] == outcomes["local"]
    assert outcomes["sharded"] == outcomes["local"]


def test_connect_validates_inputs():
    with pytest.raises(TupleSpaceError):
        connect()
    with pytest.raises(TupleSpaceError):
        connect("interstellar", policy=open_policy())
    with pytest.raises(TupleSpaceError):
        connect("local")
    sharded = make_space("sharded")
    assert connect(service=sharded.service).backend == "sharded"
    with pytest.raises(TupleSpaceError):
        connect("local", service=sharded.service)
