"""Tests for the BFT ordering protocol and the replicated PEATS facade."""

import pytest

from repro.errors import AccessDeniedError, QuorumError, ReplicationError
from repro.policy import AccessPolicy, Rule, strong_consensus_policy, weak_consensus_policy
from repro.replication import ReplicatedPEATS
from repro.replication.pbft import ReplicaFaultMode
from repro.replication.service import ReplicatedClientView
from repro.tuples import ANY, Formal, entry, template


def open_policy():
    return AccessPolicy(
        [Rule(name, name) for name in ("out", "rdp", "inp", "cas")], name="open"
    )


class TestHappyPath:
    def test_basic_operations_round_trip(self):
        service = ReplicatedPEATS(open_policy(), f=1)
        view = service.client_view("c1")
        assert view.out(entry("A", 1)) is True
        assert view.rdp(template("A", ANY)) == entry("A", 1)
        inserted, existing = view.cas(template("B", Formal("x")), entry("B", 2))
        assert inserted is True and existing is None
        assert view.inp(template("A", ANY)) == entry("A", 1)
        assert view.rdp(template("A", ANY)) is None

    def test_all_correct_replicas_reach_the_same_state(self):
        service = ReplicatedPEATS(open_policy(), f=1)
        view = service.client_view("c1")
        for i in range(5):
            view.out(entry("A", i))
        digests = set(service.replica_state_digests().values())
        assert len(digests) == 1
        assert len(service.snapshot()) == 5

    def test_multiple_clients_are_serialised(self):
        service = ReplicatedPEATS(weak_consensus_policy(), f=1)
        first = service.client_view("p1")
        second = service.client_view("p2")
        inserted1, _ = first.cas(template("DECISION", Formal("d")), entry("DECISION", "a"))
        inserted2, existing = second.cas(template("DECISION", Formal("d")), entry("DECISION", "b"))
        assert inserted1 is True
        assert inserted2 is False and existing == entry("DECISION", "a")

    def test_policy_is_enforced_at_the_replicas(self):
        processes = list(range(4))
        service = ReplicatedPEATS(strong_consensus_policy(processes, 1), f=1)
        honest = service.client_view(0)
        byzantine = service.client_view(3)
        assert honest.out(entry("PROPOSE", 0, 1)) is True
        assert not byzantine.out(entry("PROPOSE", 0, 0))  # impersonation denied
        assert byzantine.rdp(template("PROPOSE", 0, Formal("v"))) == entry("PROPOSE", 0, 1)
        assert byzantine.inp(template("PROPOSE", 0, Formal("v"))) is None  # removal denied

    def test_blocking_reads_poll_until_found(self):
        service = ReplicatedPEATS(open_policy(), f=1)
        view = service.client_view("c1")
        view.out(entry("A", 1))
        assert view.rd(template("A", ANY)) == entry("A", 1)
        assert view.in_(template("A", ANY)) == entry("A", 1)

    def test_blocking_reads_time_out_when_no_match_appears(self):
        service = ReplicatedPEATS(open_policy(), f=1)
        view = service.client_view("c1")
        before = service.network.now
        with pytest.raises(TimeoutError):
            view.rd(template("A", ANY), timeout=50.0, poll_interval=5.0)
        assert service.network.now >= before + 50.0
        with pytest.raises(TimeoutError):
            view.in_(template("B", ANY), timeout=25.0)

    def test_blocking_read_sees_tuple_produced_while_polling(self):
        service = ReplicatedPEATS(open_policy(), f=1)
        producer = service.client("p")
        view = service.client_view("c1")
        # Schedule another client's out() to land mid-poll: the polling rd
        # must pick it up once the network delivers and executes it.
        service.network.schedule_after(
            30.0, lambda: producer.submit("out", (entry("LATE", 1),))
        )
        assert view.rd(template("LATE", ANY), timeout=500.0, poll_interval=5.0) == entry("LATE", 1)

    def test_f_zero_single_replica(self):
        service = ReplicatedPEATS(open_policy(), f=0)
        assert service.n_replicas == 1
        view = service.client_view("c1")
        assert view.out(entry("A", 1)) is True
        assert view.rdp(template("A", ANY)) == entry("A", 1)

    def test_invalid_f_rejected(self):
        with pytest.raises(ReplicationError):
            ReplicatedPEATS(open_policy(), f=-1)


class TestByzantineReplicas:
    def test_one_lying_replica_is_outvoted(self):
        service = ReplicatedPEATS(
            open_policy(), f=1, replica_faults={2: ReplicaFaultMode.LYING}
        )
        view = service.client_view("c1")
        assert view.out(entry("A", 1)) is True
        assert view.rdp(template("A", ANY)) == entry("A", 1)

    def test_one_crashed_backup_does_not_affect_liveness(self):
        service = ReplicatedPEATS(
            open_policy(), f=1, replica_faults={2: ReplicaFaultMode.CRASHED}
        )
        view = service.client_view("c1")
        for i in range(3):
            assert view.out(entry("A", i)) is True

    def test_crashed_primary_triggers_view_change(self):
        service = ReplicatedPEATS(
            open_policy(),
            f=1,
            replica_faults={0: ReplicaFaultMode.CRASHED},
            view_change_timeout=10.0,
        )
        view = service.client_view("c1")
        assert view.out(entry("A", 1)) is True
        views = [node.view for node in service.correct_nodes()]
        assert all(v >= 1 for v in views)
        assert view.rdp(template("A", ANY)) == entry("A", 1)

    def test_mute_replica_executes_but_stays_silent(self):
        service = ReplicatedPEATS(
            open_policy(), f=1, replica_faults={1: ReplicaFaultMode.MUTE}
        )
        view = service.client_view("c1")
        assert view.out(entry("A", 1)) is True

    def test_too_many_lying_replicas_yield_no_quorum(self):
        service = ReplicatedPEATS(
            open_policy(),
            f=1,
            replica_faults={
                1: ReplicaFaultMode.LYING,
                2: ReplicaFaultMode.LYING,
                3: ReplicaFaultMode.LYING,
            },
        )
        client = service.client("c1")
        client._max_retransmissions = 2
        with pytest.raises(QuorumError):
            client.invoke("out", (entry("A", 1),))


class TestViewChangeSequenceHoles:
    def test_orphaned_pre_prepare_does_not_brick_the_service(self):
        """Regression: a pre-prepare that reached only one backup (never
        prepared, so absent from every view-change vote's prepared map)
        used to leave a permanent hole at its sequence number — execution
        is strictly contiguous, so no later request ever executed.  The new
        primary must plug such holes with null requests."""
        service = ReplicatedPEATS(open_policy(), f=1, view_change_timeout=30.0)
        network = service.network
        network.partition("replica-0", "replica-2")
        network.partition("replica-0", "replica-3")
        view = service.client_view("c1")
        assert view.out(entry("A", 1)) is True  # forces the view change
        network.heal_all()
        # The service must keep serving after the partition heals.
        assert view.out(entry("A", 2)) is True
        assert view.rdp(template("A", ANY)) == entry("A", 1)
        assert all(node.view >= 1 for node in service.correct_nodes())
        assert len(service.snapshot()) == 2

    def test_isolated_replica_elected_primary_recovers_the_real_history(self):
        """Regression: a replica partitioned away (from replicas AND the
        client) while the quorum executed requests used to null-fill those
        sequences when it later became primary, permanently diverging its
        tuple-space state — and `snapshot()` could return the diverged
        state.  View-change votes must carry certificates for *executed*
        sequences too, so the new primary re-proposes the real requests."""
        service = ReplicatedPEATS(open_policy(), f=1, view_change_timeout=30.0)
        network = service.network
        for peer in ("replica-0", "replica-2", "replica-3", "c1"):
            network.partition("replica-1", peer)
        view = service.client_view("c1")
        assert view.out(entry("A", 1)) is True  # executed by replicas 0,2,3
        assert view.out(entry("A", 2)) is True
        network.heal_all()
        service.nodes[0].fault_mode = ReplicaFaultMode.CRASHED
        # The next request forces a view change electing replica-1, which
        # missed the whole history.
        assert view.out(entry("A", 3)) is True
        up_to_date = max(n.last_executed for n in service.correct_nodes())
        digests = {
            node.application.state_digest()
            for node in service.correct_nodes()
            if node.last_executed == up_to_date
        }
        assert len(digests) == 1
        assert set(service.snapshot()) == {entry("A", 1), entry("A", 2), entry("A", 3)}

    def test_blocking_read_denied_by_policy_raises_immediately(self):
        """A denial must surface as AccessDeniedError on the first probe —
        mirroring the local PEATS — not poll until a TimeoutError."""
        processes = list(range(4))
        service = ReplicatedPEATS(strong_consensus_policy(processes, 1), f=1)
        honest = service.client_view(0)
        assert honest.out(entry("PROPOSE", 0, 1)) is True
        intruder = service.client_view(3)
        before = service.network.now
        with pytest.raises(AccessDeniedError):
            intruder.in_(template("PROPOSE", 0, Formal("v")))  # removal denied
        # One round trip, not a full polling window.
        assert service.network.now - before < ReplicatedClientView.default_blocking_timeout


class TestSharedSpaceAdapter:
    def test_adapter_routes_by_process(self):
        processes = list(range(4))
        service = ReplicatedPEATS(strong_consensus_policy(processes, 1), f=1)
        shared = service.as_shared_space()
        assert shared.out(entry("PROPOSE", 0, 1), process=0) is True
        assert not shared.out(entry("PROPOSE", 1, 1), process=0)
        assert shared.rdp(template("PROPOSE", 0, Formal("v")), process=2) == entry("PROPOSE", 0, 1)
        assert len(shared.snapshot()) == 1
        bound = shared.bind(1)
        assert bound.out(entry("PROPOSE", 1, 1)) is True

    def test_statistics_and_views(self):
        service = ReplicatedPEATS(open_policy(), f=1)
        view = service.client_view("c1")
        view.out(entry("A", 1))
        stats = service.client("c1").statistics
        assert stats["requests"] >= 1
        assert service.network.statistics["delivered"] > 0
