"""Tests for the BFT ordering protocol and the replicated PEATS facade."""

import pytest

from repro.errors import QuorumError, ReplicationError
from repro.policy import AccessPolicy, Rule, strong_consensus_policy, weak_consensus_policy
from repro.replication import ReplicatedPEATS
from repro.replication.pbft import ReplicaFaultMode
from repro.tuples import ANY, Formal, entry, template


def open_policy():
    return AccessPolicy(
        [Rule(name, name) for name in ("out", "rdp", "inp", "cas")], name="open"
    )


class TestHappyPath:
    def test_basic_operations_round_trip(self):
        service = ReplicatedPEATS(open_policy(), f=1)
        view = service.client_view("c1")
        assert view.out(entry("A", 1)) is True
        assert view.rdp(template("A", ANY)) == entry("A", 1)
        inserted, existing = view.cas(template("B", Formal("x")), entry("B", 2))
        assert inserted is True and existing is None
        assert view.inp(template("A", ANY)) == entry("A", 1)
        assert view.rdp(template("A", ANY)) is None

    def test_all_correct_replicas_reach_the_same_state(self):
        service = ReplicatedPEATS(open_policy(), f=1)
        view = service.client_view("c1")
        for i in range(5):
            view.out(entry("A", i))
        digests = set(service.replica_state_digests().values())
        assert len(digests) == 1
        assert len(service.snapshot()) == 5

    def test_multiple_clients_are_serialised(self):
        service = ReplicatedPEATS(weak_consensus_policy(), f=1)
        first = service.client_view("p1")
        second = service.client_view("p2")
        inserted1, _ = first.cas(template("DECISION", Formal("d")), entry("DECISION", "a"))
        inserted2, existing = second.cas(template("DECISION", Formal("d")), entry("DECISION", "b"))
        assert inserted1 is True
        assert inserted2 is False and existing == entry("DECISION", "a")

    def test_policy_is_enforced_at_the_replicas(self):
        processes = list(range(4))
        service = ReplicatedPEATS(strong_consensus_policy(processes, 1), f=1)
        honest = service.client_view(0)
        byzantine = service.client_view(3)
        assert honest.out(entry("PROPOSE", 0, 1)) is True
        assert not byzantine.out(entry("PROPOSE", 0, 0))  # impersonation denied
        assert byzantine.rdp(template("PROPOSE", 0, Formal("v"))) == entry("PROPOSE", 0, 1)
        assert byzantine.inp(template("PROPOSE", 0, Formal("v"))) is None  # removal denied

    def test_blocking_reads_are_not_offered(self):
        service = ReplicatedPEATS(open_policy(), f=1)
        view = service.client_view("c1")
        with pytest.raises(ReplicationError):
            view.rd(template("A", ANY))
        with pytest.raises(ReplicationError):
            view.in_(template("A", ANY))

    def test_f_zero_single_replica(self):
        service = ReplicatedPEATS(open_policy(), f=0)
        assert service.n_replicas == 1
        view = service.client_view("c1")
        assert view.out(entry("A", 1)) is True
        assert view.rdp(template("A", ANY)) == entry("A", 1)

    def test_invalid_f_rejected(self):
        with pytest.raises(ReplicationError):
            ReplicatedPEATS(open_policy(), f=-1)


class TestByzantineReplicas:
    def test_one_lying_replica_is_outvoted(self):
        service = ReplicatedPEATS(
            open_policy(), f=1, replica_faults={2: ReplicaFaultMode.LYING}
        )
        view = service.client_view("c1")
        assert view.out(entry("A", 1)) is True
        assert view.rdp(template("A", ANY)) == entry("A", 1)

    def test_one_crashed_backup_does_not_affect_liveness(self):
        service = ReplicatedPEATS(
            open_policy(), f=1, replica_faults={2: ReplicaFaultMode.CRASHED}
        )
        view = service.client_view("c1")
        for i in range(3):
            assert view.out(entry("A", i)) is True

    def test_crashed_primary_triggers_view_change(self):
        service = ReplicatedPEATS(
            open_policy(),
            f=1,
            replica_faults={0: ReplicaFaultMode.CRASHED},
            view_change_timeout=10.0,
        )
        view = service.client_view("c1")
        assert view.out(entry("A", 1)) is True
        views = [node.view for node in service.correct_nodes()]
        assert all(v >= 1 for v in views)
        assert view.rdp(template("A", ANY)) == entry("A", 1)

    def test_mute_replica_executes_but_stays_silent(self):
        service = ReplicatedPEATS(
            open_policy(), f=1, replica_faults={1: ReplicaFaultMode.MUTE}
        )
        view = service.client_view("c1")
        assert view.out(entry("A", 1)) is True

    def test_too_many_lying_replicas_yield_no_quorum(self):
        service = ReplicatedPEATS(
            open_policy(),
            f=1,
            replica_faults={
                1: ReplicaFaultMode.LYING,
                2: ReplicaFaultMode.LYING,
                3: ReplicaFaultMode.LYING,
            },
        )
        client = service.client("c1")
        client._max_retransmissions = 2
        with pytest.raises(QuorumError):
            client.invoke("out", (entry("A", 1),))


class TestSharedSpaceAdapter:
    def test_adapter_routes_by_process(self):
        processes = list(range(4))
        service = ReplicatedPEATS(strong_consensus_policy(processes, 1), f=1)
        shared = service.as_shared_space()
        assert shared.out(entry("PROPOSE", 0, 1), process=0) is True
        assert not shared.out(entry("PROPOSE", 1, 1), process=0)
        assert shared.rdp(template("PROPOSE", 0, Formal("v")), process=2) == entry("PROPOSE", 0, 1)
        assert len(shared.snapshot()) == 1
        bound = shared.bind(1)
        assert bound.out(entry("PROPOSE", 1, 1)) is True

    def test_statistics_and_views(self):
        service = ReplicatedPEATS(open_policy(), f=1)
        view = service.client_view("c1")
        view.out(entry("A", 1))
        stats = service.client("c1").statistics
        assert stats["requests"] >= 1
        assert service.network.statistics["delivered"] > 0
