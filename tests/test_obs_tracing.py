"""End-to-end request tracing, Space.stats() surfacing and determinism."""

from __future__ import annotations

import pytest

from repro.api import connect
from repro.obs import Observability, PHASES, Tracer
from repro.policy import AccessPolicy, Rule
from repro.sim import Scenario, SimMetrics, run_scenario
from repro.sim.workloads import consensus_storm
from repro.tuples import entry, template, Formal


def open_policy() -> AccessPolicy:
    return AccessPolicy(
        [Rule(op, op) for op in ("out", "rdp", "inp", "cas")], name="obs-test"
    )


# ----------------------------------------------------------------------
# Tracer unit behaviour
# ----------------------------------------------------------------------


def test_tracer_first_observation_wins_and_sorts_canonically():
    tracer = Tracer()
    key = ("client", 0)
    tracer.record("prepare", key, "replica-2", 5.0)
    tracer.record("submit", key, "client", 1.0)
    tracer.record("prepare", key, "replica-0", 4.0)  # later report, ignored
    timeline = tracer.timeline(key)
    assert [row[0] for row in timeline] == ["submit", "prepare"]
    assert timeline[1] == ("prepare", 5.0, "replica-2")
    assert tracer.phase_durations(key) == [("submit→prepare", 4.0)]


def test_tracer_caps_new_requests_but_completes_open_spans():
    tracer = Tracer(max_requests=1)
    tracer.record("submit", "a", "c", 1.0)
    tracer.record("complete", "a", "c", 2.0)  # open span keeps recording
    tracer.record("submit", "b", "c", 3.0)  # new key at cap: dropped
    stats = tracer.statistics()
    assert stats == {"requests": 1, "complete": 1, "observations": 2, "dropped": 1}


def test_phase_report_aggregates_over_requests():
    tracer = Tracer()
    for index, latency in enumerate((1.0, 3.0)):
        key = ("c", index)
        tracer.record("submit", key, "c", 0.0)
        tracer.record("complete", key, "c", latency)
    (row,) = tracer.phase_report()
    assert row["phase"] == "submit→complete"
    assert row["count"] == 2
    assert row["mean"] == pytest.approx(2.0)
    assert row["max"] == pytest.approx(3.0)


# ----------------------------------------------------------------------
# Span assembly through the real stack
# ----------------------------------------------------------------------


def test_replicated_requests_assemble_full_consensus_span():
    obs = Observability()
    space = connect("replicated", policy=open_policy(), f=1, obs=obs)
    space.out(entry("k", 1), process="p0")
    assert space.rd(template("k", Formal("v")), process="p0") == entry("k", 1)
    keys = obs.tracer.requests()
    assert keys, "no spans were traced"
    phases = [phase for phase, _, _ in obs.tracer.timeline(keys[0])]
    assert phases == [
        "submit", "pre-prepare", "prepare", "commit", "execute", "reply", "complete",
    ]
    # Phase times never run backwards along the lifecycle.
    times = [when for _, when, _ in obs.tracer.timeline(keys[0])]
    assert times == sorted(times)


def test_sharded_requests_include_route_phase_and_shard_node():
    obs = Observability()
    space = connect("sharded", policy=open_policy(), shards=2, f=1, obs=obs)
    space.out(entry("a", 1), process="p0")
    space.out(entry("b", 2), process="p0")
    routed = {}
    for key in obs.tracer.requests():
        for phase, _, node in obs.tracer.timeline(key):
            if phase == "route":
                routed[key] = node
    assert routed, "sharded submits must traverse the route phase"
    assert all(node.startswith("shard-") for node in routed.values())
    # Both tuples hash to some shard; the route span also appears in the
    # scatter metrics when a wildcard probe fans out.
    assert space.rdp(template("a", Formal("v")), process="p0") == entry("a", 1)
    snap = obs.registry.snapshot()
    assert "cluster_routed_total" in snap


def test_wildcard_scatter_counts_probe_fanout():
    obs = Observability()
    space = connect("sharded", policy=open_policy(), shards=4, f=1, obs=obs)
    space.out(entry("x", 1), process="p0")
    from repro.tuples import ANY

    assert space.rdp(template(ANY, Formal("v")), process="p0") == entry("x", 1)
    snap = obs.registry.snapshot()
    rounds = snap["cluster_scatter_rounds_total"]["samples"][0]["value"]
    probes = snap["cluster_scatter_probes_total"]["samples"][0]["value"]
    assert rounds >= 1
    assert probes == rounds * 4


def test_all_phases_are_canonical():
    obs = Observability()
    space = connect("sharded", policy=open_policy(), shards=2, f=1, obs=obs)
    space.out(entry("k", 1), process="p0")
    seen = {
        phase
        for key in obs.tracer.requests()
        for phase, _, _ in obs.tracer.timeline(key)
    }
    assert seen <= set(PHASES)


# ----------------------------------------------------------------------
# Space.stats() surfacing
# ----------------------------------------------------------------------


def test_space_stats_surfaces_network_metrics_and_tracing():
    obs = Observability()
    space = connect("replicated", policy=open_policy(), f=1, obs=obs)
    space.out(entry("k", 1), process="p0")
    stats = space.stats()
    assert stats["backend"] == "replicated"
    assert "handler_errors" in stats["network"]
    assert stats["tracing"]["requests"] >= 1
    assert stats["metrics"]["client_requests_total"]["samples"][0]["value"] >= 1
    assert "nodes" in stats
    node_stats = next(iter(stats["nodes"].values()))
    for key in (
        "batches_proposed", "pending_unordered", "view_changes_started",
        "checkpoints_taken", "truncations", "reply_cache_hits", "requests_executed",
    ):
        assert key in node_stats


def test_space_stats_without_obs_omits_metrics_but_keeps_handler_errors():
    space = connect("replicated", policy=open_policy(), f=1)
    space.out(entry("k", 1), process="p0")
    stats = space.stats()
    assert "metrics" not in stats and "tracing" not in stats
    assert stats["network"]["handler_errors"] == 0


def test_local_space_stats():
    space = connect("local", policy=open_policy())
    space.out(entry("k", 1), process="p0")
    stats = space.stats()
    assert stats["backend"] == "local"
    assert stats["tuples"] == 1
    assert stats["policy"] == "obs-test"


def test_pbft_statistics_count_reply_cache_hits_with_obs():
    obs = Observability()
    space = connect("replicated", policy=open_policy(), f=1, obs=obs)
    space.out(entry("k", 1), process="p0")
    snap = obs.registry.snapshot()
    assert "pbft_batches_total" in snap
    batches = sum(s["value"] for s in snap["pbft_batches_total"]["samples"])
    assert batches >= 1
    # Only the primary proposes; its batch-size histogram has samples,
    # the backups' pre-bound children legitimately stay empty.
    sizes = snap["pbft_batch_size"]["samples"]
    assert sum(s["count"] for s in sizes) >= 1


def test_peo_denials_are_counted_by_reason():
    obs = Observability()
    # Policy with no inp rule: destructive reads denied.
    policy = AccessPolicy(
        [Rule(op, op) for op in ("out", "rdp")], name="no-removal"
    )
    space = connect("replicated", policy=policy, f=1, obs=obs)
    space.out(entry("k", 1), process="p0")
    # The unified denial model reads a denied inp as "no match".
    assert space.inp(template("k", Formal("v")), process="p0") is None
    snap = obs.registry.snapshot()
    denials = snap["peats_denials_total"]["samples"]
    assert denials and all(s["labels"]["operation"] == "inp" for s in denials)


# ----------------------------------------------------------------------
# Determinism: observability must not perturb the replay
# ----------------------------------------------------------------------


def _storm(obs):
    return Scenario(
        name="obs-determinism", clients=consensus_storm(8), seed=13, obs=obs
    )


def test_trace_digest_identical_with_and_without_observability():
    bare = run_scenario(_storm(None))
    instrumented = run_scenario(_storm(Observability()))
    assert bare.completed and instrumented.completed
    assert bare.metrics.trace_digest() == instrumented.metrics.trace_digest()


def test_instrumented_replay_is_self_identical_and_metrics_match():
    first_obs, second_obs = Observability(), Observability()
    first = run_scenario(_storm(first_obs))
    second = run_scenario(_storm(second_obs))
    assert first.metrics.trace_digest() == second.metrics.trace_digest()
    # The whole metrics export is deterministic too: same seed, same text.
    assert (
        first_obs.registry.to_prometheus_text()
        == second_obs.registry.to_prometheus_text()
    )
    assert first_obs.tracer.phase_report() == second_obs.tracer.phase_report()


# ----------------------------------------------------------------------
# SimMetrics throughput-series cache hardening (regression)
# ----------------------------------------------------------------------


def test_throughput_series_stays_fresh_when_interleaved_with_records():
    metrics = SimMetrics(throughput_bucket=10.0)
    metrics.record_complete(5.0, "p", "out", 0, latency=1.0, status="OK")
    assert metrics.throughput_series() == [(0.0, 1)]
    # A completion recorded *after* a series call must invalidate the cache.
    metrics.record_complete(15.0, "p", "out", 1, latency=1.0, status="OK")
    assert metrics.throughput_series() == [(0.0, 1), (10.0, 1)]
    metrics.record_complete(15.5, "p", "out", 2, latency=1.0, status="OK")
    assert metrics.throughput_series() == [(0.0, 1), (10.0, 2)]


def test_throughput_series_returns_defensive_copies():
    metrics = SimMetrics(throughput_bucket=10.0)
    metrics.record_complete(5.0, "p", "out", 0, latency=1.0, status="OK")
    series = metrics.throughput_series()
    series.append(("corrupted", 99))
    assert metrics.throughput_series() == [(0.0, 1)]


def test_throughput_bucket_reassignment_invalidates_cache():
    metrics = SimMetrics(throughput_bucket=10.0)
    metrics.record_complete(5.0, "p", "out", 0, latency=1.0, status="OK")
    metrics.record_complete(15.0, "p", "out", 1, latency=1.0, status="OK")
    assert metrics.throughput_series() == [(0.0, 1), (10.0, 1)]
    metrics.throughput_bucket = 100.0
    assert metrics.throughput_series() == [(0.0, 2)]
    with pytest.raises(ValueError):
        metrics.throughput_bucket = 0.0
