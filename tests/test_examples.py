"""Integration tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )


def test_there_are_at_least_three_examples():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_without_errors(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should print something"
    assert "Traceback" not in result.stderr


def test_quickstart_reports_expected_results():
    result = run_example("quickstart.py")
    assert "decides 'blue'" in result.stdout
    assert "decision: 1" in result.stdout
    assert "ticket 0" in result.stdout


def test_leader_election_elects_justified_leader():
    result = run_example("leader_election.py")
    assert "elected leader: node-1" in result.stdout
    assert "fallback" in result.stdout


def test_byzantine_attack_demo_denies_everything():
    result = run_example("byzantine_attack_demo.py")
    assert "still possible" not in result.stdout


def test_reactive_tour_pushes_and_suppresses():
    result = run_example("reactive_tour.py")
    assert "watched insert Entry('TICK', 2)" in result.stdout
    assert "fallback poll: 5000 ms" in result.stdout
    assert "spy saw     []" in result.stdout
    assert "loopback watch event -> Entry('EVT', 'over-the-wire')" in result.stdout


def test_txn_tour_commits_aborts_and_forces_expired_locks():
    result = run_example("txn_tour.py")
    assert "committed: True, took Entry('ACCT-A', 'token-7')" in result.stdout
    assert "three-shard commit: True, 4 legs" in result.stdout
    assert "drained retry aborts with reason ('no-match', 0)" in result.stdout
    assert "transfer aborted cleanly" in result.stdout
    assert (
        "bystander forced the abort and took Entry('ACCT-A', 'stuck-token')"
        in result.stdout
    )
