"""Tests for the replica application (tuple space + interceptor)."""

from repro.policy import strong_consensus_policy, weak_consensus_policy
from repro.replication.messages import ClientRequest
from repro.replication.replica import DENIED, PEATSReplica
from repro.tuples import ANY, Formal, entry, template


def request(client, request_id, operation, *arguments):
    return ClientRequest(
        client=client, request_id=request_id, operation=operation, arguments=tuple(arguments)
    )


class TestExecution:
    def test_allowed_operation_executes(self):
        replica = PEATSReplica("r0", strong_consensus_policy(range(4), 1))
        status, value = replica.execute(request(0, 0, "out", entry("PROPOSE", 0, 1)))
        assert status == "OK" and value is True
        assert entry("PROPOSE", 0, 1) in replica.space

    def test_denied_operation_is_reported_and_has_no_effect(self):
        replica = PEATSReplica("r0", strong_consensus_policy(range(4), 1))
        status, reason = replica.execute(request(0, 0, "out", entry("PROPOSE", 1, 1)))
        assert status == DENIED
        assert "deny" in reason.lower() or "denied" in reason.lower() or "no rule" in reason.lower()
        assert len(replica.space.snapshot()) == 0

    def test_unsupported_operation_denied(self):
        replica = PEATSReplica("r0", weak_consensus_policy())
        status, _ = replica.execute(request("c", 0, "format_disk"))
        assert status == DENIED

    def test_rdp_and_cas_round_trip(self):
        replica = PEATSReplica("r0", strong_consensus_policy(range(4), 1))
        replica.execute(request(0, 0, "out", entry("PROPOSE", 0, 1)))
        replica.execute(request(1, 0, "out", entry("PROPOSE", 1, 1)))
        status, value = replica.execute(
            request(2, 0, "rdp", template("PROPOSE", 0, Formal("v")))
        )
        assert status == "OK" and value == entry("PROPOSE", 0, 1)
        status, (inserted, existing) = replica.execute(
            request(
                2,
                1,
                "cas",
                template("DECISION", Formal("d"), ANY),
                entry("DECISION", 1, frozenset({0, 1})),
            )
        )
        assert status == "OK" and inserted is True and existing is None

    def test_request_execution_is_idempotent(self):
        replica = PEATSReplica("r0", strong_consensus_policy(range(4), 1))
        first = replica.execute(request(0, 7, "out", entry("PROPOSE", 0, 1)))
        second = replica.execute(request(0, 7, "out", entry("PROPOSE", 0, 1)))
        assert first == second
        assert len(replica.space.snapshot()) == 1

    def test_determinism_across_replicas(self):
        requests = [
            request(0, 0, "out", entry("PROPOSE", 0, 1)),
            request(1, 0, "out", entry("PROPOSE", 1, 1)),
            request(1, 1, "rdp", template("PROPOSE", ANY, Formal("v"))),
            request(
                0,
                1,
                "cas",
                template("DECISION", Formal("d"), ANY),
                entry("DECISION", 1, frozenset({0, 1})),
            ),
        ]
        replicas = [
            PEATSReplica(f"r{i}", strong_consensus_policy(range(4), 1)) for i in range(4)
        ]
        results = []
        for replica in replicas:
            results.append(tuple(replica.execute(r) for r in requests))
        assert len(set(results)) == 1
        assert len({replica.state_digest() for replica in replicas}) == 1

    def test_state_digest_differs_when_states_diverge(self):
        a = PEATSReplica("a", strong_consensus_policy(range(4), 1))
        b = PEATSReplica("b", strong_consensus_policy(range(4), 1))
        a.execute(request(0, 0, "out", entry("PROPOSE", 0, 1)))
        assert a.state_digest() != b.state_digest()
