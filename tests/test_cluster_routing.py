"""Property tests for the cluster's name → shard routing.

The routing function is the safety anchor of the sharded deployment:
every client must independently compute the *same* shard for the same
name in every process and every run (determinism), every valid name must
route somewhere (totality), and explicitly assigned names must not move
when the cluster grows (stability).  The tests pin all three down, plus
the operation-level rules (wildcard names and split ``cas`` pairs are
cross-shard and rejected).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ExplicitRouting,
    HashRouting,
    RangeRouting,
    ShardMap,
)
from repro.errors import CrossShardError, ReplicationError
from repro.tuples import ANY, Formal, entry, template

#: Field values a tuple name can take (any defined, hashable field).
names = st.one_of(
    st.text(max_size=20),
    st.integers(),
    st.booleans(),
    st.floats(allow_nan=False),
    st.binary(max_size=16),
    st.tuples(st.text(max_size=5), st.integers()),
)


class TestHashRouting:
    @settings(max_examples=100, deadline=None)
    @given(name=names, n_shards=st.integers(min_value=1, max_value=16))
    def test_total_and_in_range(self, name, n_shards):
        shard = ShardMap(n_shards).shard_of(name)
        assert 0 <= shard < n_shards

    @settings(max_examples=50, deadline=None)
    @given(name=names, n_shards=st.integers(min_value=1, max_value=16))
    def test_deterministic_across_instances(self, name, n_shards):
        # Two independently built maps (fresh policy objects) must agree —
        # this is what lets every client route without coordination.
        first = ShardMap(n_shards, HashRouting())
        second = ShardMap(n_shards, HashRouting())
        assert first.shard_of(name) == second.shard_of(name)

    def test_deterministic_across_runs(self):
        # Pinned values: the hash is seeded SHA-256 over a canonical
        # rendering, so the mapping survives interpreter restarts (unlike
        # built-in ``hash``, which is per-process randomised for strings).
        m4 = ShardMap(4)
        assert {
            name: m4.shard_of(name)
            for name in ("DECISION", "LOCK", "KV-0", "KV-1", "JOB", 42, ("tup", 1))
        } == {
            "DECISION": 3,
            "LOCK": 1,
            "KV-0": 3,
            "KV-1": 2,
            "JOB": 0,
            42: 2,
            ("tup", 1): 3,
        }

    def test_distinct_salts_give_distinct_maps(self):
        probe = [f"name-{i}" for i in range(64)]
        a = ShardMap(4, HashRouting(salt="a"))
        b = ShardMap(4, HashRouting(salt="b"))
        assert [a.shard_of(n) for n in probe] != [b.shard_of(n) for n in probe]

    def test_string_and_equal_repr_values_do_not_collide_blindly(self):
        # repr('1') != repr(1): the canonical key keeps the types apart.
        m = ShardMap(64)
        samples = {("s", "1"), ("i", 1), ("s", "a"), ("b", b"a")}
        assert len(samples) == 4  # distinct names, routed independently
        for _, name in samples:
            assert 0 <= m.shard_of(name) < 64


class TestRangeRouting:
    def test_boundaries_partition_the_name_space(self):
        m = ShardMap(3, RangeRouting(boundaries=("H", "P")))
        assert m.shard_of("DECISION") == 0
        assert m.shard_of("LOCK") == 1
        assert m.shard_of("QUEUE") == 2
        assert m.shard_of("H") == 1  # boundary itself goes right

    def test_boundary_count_must_match_shard_count(self):
        with pytest.raises(ReplicationError):
            ShardMap(3, RangeRouting(boundaries=("M",)))
        with pytest.raises(ReplicationError):
            ShardMap(2, RangeRouting(boundaries=("Z", "A")))  # unsorted

    @settings(max_examples=50, deadline=None)
    @given(name=names)
    def test_total_over_non_string_names_via_repr(self, name):
        m = ShardMap(2, RangeRouting(boundaries=("M",)))
        assert 0 <= m.shard_of(name) < 2


class TestExplicitRouting:
    def test_assigned_names_are_stable_under_shard_count_changes(self):
        # Growing the cluster must not move explicitly assigned names —
        # their tuples live on the assigned group and a re-route would
        # make them unreachable.
        assignment = {"DECISION": 0, "LOCK": 1, "AUDIT": 1}
        for n_shards in (2, 3, 4, 8):
            m = ShardMap(n_shards, ExplicitRouting(assignment))
            for name, shard in assignment.items():
                assert m.shard_of(name) == shard

    @settings(max_examples=50, deadline=None)
    @given(name=names, n_shards=st.integers(min_value=2, max_value=8))
    def test_total_via_fallback(self, name, n_shards):
        m = ShardMap(n_shards, ExplicitRouting({"DECISION": 0}))
        assert 0 <= m.shard_of(name) < n_shards

    def test_out_of_range_assignment_is_rejected(self):
        with pytest.raises(ReplicationError):
            ShardMap(2, ExplicitRouting({"DECISION": 2}))
        with pytest.raises(ReplicationError):
            ShardMap(2, ExplicitRouting({"DECISION": -1}))
        with pytest.raises(ReplicationError):
            ShardMap(2, ExplicitRouting({"DECISION": True}))

    def test_fallback_policy_is_pluggable(self):
        m = ShardMap(3, ExplicitRouting({"PINNED": 2}, fallback=RangeRouting(("H", "P"))))
        assert m.shard_of("PINNED") == 2
        assert m.shard_of("AAA") == 0
        assert m.shard_of("ZZZ") == 2


class TestOperationRouting:
    def test_entries_and_concrete_templates_route_by_name(self):
        m = ShardMap(4, ExplicitRouting({"JOB": 1}))
        assert m.route("out", (entry("JOB", 7),)) == 1
        assert m.route("rdp", (template("JOB", ANY),)) == 1
        assert m.route("inp", (template("JOB", Formal("x")),)) == 1
        assert m.route("cas", (template("JOB", ANY), entry("JOB", 7))) == 1

    def test_wildcard_name_is_cross_shard(self):
        m = ShardMap(2)
        with pytest.raises(CrossShardError):
            m.route("rdp", (template(ANY, 1),))
        with pytest.raises(CrossShardError):
            m.route("inp", (template(Formal("n"), 1),))

    def test_cas_pair_must_agree_on_one_shard(self):
        m = ShardMap(2, ExplicitRouting({"A": 0, "B": 1}))
        with pytest.raises(CrossShardError):
            m.route("cas", (template("A", ANY), entry("B", 1)))
        # Wildcard template name in a cas is cross-shard too.
        with pytest.raises(CrossShardError):
            m.route("cas", (template(ANY, ANY), entry("A", 1)))

    def test_unroutable_operation_is_rejected(self):
        m = ShardMap(2)
        with pytest.raises(CrossShardError):
            m.route("__noop__", ())

    def test_shard_map_validates_policy_output(self):
        class Broken:
            def shard_of(self, name, n_shards):
                return n_shards  # off by one

            def validate(self, n_shards):
                pass

        with pytest.raises(ReplicationError):
            ShardMap(2, Broken()).shard_of("X")

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ReplicationError):
            ShardMap(0)
