"""Health probes: unit behaviour over fake deployments, hysteresis, and
the live checkpoint-starvation signal on a real replicated group."""

from __future__ import annotations

import pytest

from repro.api import connect
from repro.obs import HealthMonitor, HealthReport, NULL_HEALTH, Observability
from repro.policy import AccessPolicy, Rule
from repro.tuples import entry


def open_policy() -> AccessPolicy:
    return AccessPolicy(
        [Rule(op, op) for op in ("out", "rdp", "inp", "cas")], name="health-test"
    )


# ----------------------------------------------------------------------
# Fakes — the monitor duck-types deployments, so tests can shape state
# ----------------------------------------------------------------------


class FakeApp:
    def __init__(self, waiters=0, cap=32):
        self._waiters, self._cap = waiters, cap

    def occupancy(self):
        return {
            "waiters": self._waiters, "waiter_cap": self._cap,
            "reply_cache": 0, "locks": 0,
        }


class FakeNode:
    def __init__(
        self,
        replica_id,
        *,
        last_executed=0,
        stable_checkpoint=0,
        checkpoint_interval=8,
        log_window=16,
        view_changes=0,
        votes=None,
        waiters=0,
    ):
        self.replica_id = replica_id
        self.last_executed = last_executed
        self.stable_checkpoint = stable_checkpoint
        self.checkpoint_interval = checkpoint_interval
        self.log_window = log_window
        self.statistics = {"view_changes_started": view_changes}
        self._votes = dict(votes or {})
        self.application = FakeApp(waiters=waiters)

    def checkpoint_vote_table(self):
        return dict(self._votes)


class FakeService:
    group = None

    def __init__(self, nodes, client_totals=None):
        self.nodes = tuple(nodes)
        self._totals = client_totals or {}

    def client_statistics(self):
        return dict(self._totals)


class FakeCluster:
    def __init__(self, groups):
        self.groups = tuple(groups)


def settle(monitor, service, rounds=2, **kwargs):
    """Run enough evaluations to pass the fire_after hysteresis."""
    reports = []
    for _ in range(rounds):
        reports = monitor.check(service, **kwargs)
    return reports


# ----------------------------------------------------------------------
# Probe units
# ----------------------------------------------------------------------


class TestCheckpointStarvation:
    def test_within_one_interval_is_silent(self):
        service = FakeService([FakeNode("r0", last_executed=8, stable_checkpoint=0)])
        assert settle(HealthMonitor(), service) == []

    def test_lag_past_interval_warns_and_past_window_is_critical(self):
        monitor = HealthMonitor()
        warn = FakeService([FakeNode("r0", last_executed=12, stable_checkpoint=0)])
        (report,) = settle(monitor, warn)
        assert (report.probe, report.level) == ("checkpoint-starvation", "warn")
        critical = FakeService([FakeNode("r0", last_executed=16, stable_checkpoint=0)])
        (report,) = settle(HealthMonitor(), critical)
        assert report.level == "critical"
        assert report.data["lag"] == 16

    def test_divergent_votes_name_each_digest_group(self):
        votes = {
            "r0": (8, "aaaa" * 16), "r2": (8, "aaaa" * 16),
            "r1": (8, "bbbb" * 16), "r3": (8, "bbbb" * 16),
        }
        node = FakeNode(
            "r0", last_executed=16, stable_checkpoint=0, votes=votes
        )
        (report,) = settle(HealthMonitor(), FakeService([node]))
        assert "diverge" in report.detail
        groups = report.data["votes_by_digest"]
        assert sorted(groups.values()) == [["r0", "r2"], ["r1", "r3"]]


class TestViewChurnAndOccupancy:
    def test_churn_without_progress_fires_and_progress_clears(self):
        node = FakeNode("r0", last_executed=5, view_changes=0)
        monitor = HealthMonitor(fire_after=1, clear_after=1)
        service = FakeService([node])
        assert monitor.check(service) == []  # first sample only seeds deltas
        node.statistics["view_changes_started"] = 4  # +4 churn, no progress
        (report,) = monitor.check(service)
        assert report.probe == "view-churn"
        node.statistics["view_changes_started"] = 8
        node.last_executed = 8  # churn continues but execution moves
        assert monitor.check(service) == []

    def test_occupancy_levels_track_waiter_fill(self):
        monitor = HealthMonitor(fire_after=1)
        quiet = FakeService([FakeNode("r0", waiters=8)])
        assert monitor.check(quiet) == []
        warm = FakeService([FakeNode("r0", waiters=28)])  # 87% of 32
        (report,) = monitor.check(warm)
        assert (report.probe, report.level) == ("occupancy", "warn")
        hot = FakeService([FakeNode("r0", waiters=31)])  # 97% of 32
        (report,) = monitor.check(hot)
        assert report.level == "critical"


class TestReplyDivergenceAndSkew:
    def test_quorum_failures_are_critical_and_delta_based(self):
        service = FakeService(
            [FakeNode("r0")], client_totals={"quorum_failures": 3}
        )
        monitor = HealthMonitor(fire_after=1)
        assert monitor.check(service) == []  # pre-existing count only seeds
        service._totals["quorum_failures"] = 5  # +2 since last evaluation
        (report,) = monitor.check(service)
        assert (report.probe, report.level) == ("reply-divergence", "critical")
        assert report.data["quorum_failures"] == 2

    def test_shard_skew_names_the_laggard(self):
        fast = FakeService(
            [FakeNode("s0:r0", last_executed=40, stable_checkpoint=40)]
        )
        slow = FakeService([FakeNode("s1:r0", last_executed=2)])
        fast.group, slow.group = "shard-0", "shard-1"
        cluster = FakeCluster([fast, slow])
        (report,) = settle(HealthMonitor(), cluster)
        assert report.probe == "shard-skew"
        assert "shard-1" in report.detail
        assert report.data["skew"] == 38


# ----------------------------------------------------------------------
# Hysteresis
# ----------------------------------------------------------------------


class TestHysteresis:
    def test_fire_after_consecutive_observations(self):
        monitor = HealthMonitor(fire_after=3, clear_after=1)
        sick = FakeService([FakeNode("r0", last_executed=16)])
        assert monitor.check(sick) == []
        assert monitor.check(sick) == []
        assert len(monitor.check(sick)) == 1  # third consecutive: fires
        assert monitor.statistics()["fired"] == 1

    def test_interrupted_streak_resets(self):
        monitor = HealthMonitor(fire_after=2, clear_after=1)
        sick = FakeService([FakeNode("r0", last_executed=16)])
        healthy = FakeService([FakeNode("r0", last_executed=16, stable_checkpoint=16)])
        assert monitor.check(sick) == []
        assert monitor.check(healthy) == []  # streak broken
        assert monitor.check(sick) == []  # back to one observation
        assert len(monitor.check(sick)) == 1

    def test_clear_after_consecutive_clean_evaluations(self):
        monitor = HealthMonitor(fire_after=1, clear_after=2)
        sick = FakeService([FakeNode("r0", last_executed=16)])
        healthy = FakeService([FakeNode("r0", last_executed=16, stable_checkpoint=16)])
        assert len(monitor.check(sick)) == 1
        assert len(monitor.check(healthy)) == 1  # still active: one clean round
        assert monitor.check(healthy) == []  # second clean round clears
        assert monitor.statistics()["cleared"] == 1
        assert monitor.active() == []

    def test_active_report_refreshes_while_condition_escalates(self):
        monitor = HealthMonitor(fire_after=1, clear_after=1)
        warn = FakeService([FakeNode("r0", last_executed=12)])
        critical = FakeService([FakeNode("r0", last_executed=40)])
        (report,) = monitor.check(warn)
        assert report.level == "warn"
        (report,) = monitor.check(critical)
        assert report.level == "critical"  # refreshed in place, no re-fire
        assert monitor.statistics()["fired"] == 1

    def test_constructor_validates_hysteresis(self):
        with pytest.raises(ValueError):
            HealthMonitor(fire_after=0)


# ----------------------------------------------------------------------
# Metrics, null monitor and Space surfacing
# ----------------------------------------------------------------------


def test_metric_families_count_evaluations_findings_and_active():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    monitor = HealthMonitor(fire_after=1, registry=registry)
    sick = FakeService([FakeNode("r0", last_executed=16)])
    monitor.check(sick)
    snap = registry.snapshot()
    evaluations = snap["health_evaluations_total"]["samples"][0]["value"]
    assert evaluations == 1
    fired = snap["health_findings_total"]["samples"]
    assert any(
        s["labels"] == {"probe": "checkpoint-starvation", "level": "critical"}
        and s["value"] == 1
        for s in fired
    )
    active = {
        s["labels"]["probe"]: s["value"]
        for s in snap["health_alerts_active"]["samples"]
    }
    assert active["checkpoint-starvation"] == 1
    assert active["view-churn"] == 0


def test_null_monitor_is_disabled_and_inert():
    assert NULL_HEALTH.enabled is False
    assert NULL_HEALTH.check(object()) == []
    assert NULL_HEALTH.active() == []
    assert NULL_HEALTH.statistics()["evaluations"] == 0


def test_health_report_as_dict_round_trips():
    report = HealthReport("p", "warn", "s", "d", {"k": 1})
    assert report.as_dict() == {
        "probe": "p", "level": "warn", "subject": "s", "detail": "d", "data": {"k": 1},
    }


def test_space_stats_run_one_health_evaluation_per_call():
    obs = Observability()
    space = connect("replicated", policy=open_policy(), f=1, obs=obs)
    space.out(entry("k", 1), process="p0")
    space.stats()
    space.stats()
    assert obs.health.statistics()["evaluations"] == 2
