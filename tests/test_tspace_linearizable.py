"""Unit and concurrency tests for the linearizable wrapper."""

import threading

import pytest

from repro.errors import PendingOperationError
from repro.tspace import AugmentedTupleSpace, HistoryRecorder, LinearizableTupleSpace
from repro.tspace.history import check_sequential_consistency
from repro.tuples import ANY, Formal, entry, template


@pytest.fixture
def recorder():
    return HistoryRecorder()


@pytest.fixture
def space(recorder):
    return LinearizableTupleSpace(history=recorder)


class TestBasicDelegation:
    def test_out_rdp_inp(self, space):
        space.out(entry("A", 1), process="p1")
        assert space.rdp(template("A", ANY), process="p2") == entry("A", 1)
        assert space.inp(template("A", ANY), process="p2") == entry("A", 1)
        assert space.rdp(template("A", ANY), process="p1") is None

    def test_cas(self, space):
        inserted, _ = space.cas(template("D", Formal("v")), entry("D", 1), process="p1")
        assert inserted
        inserted, existing = space.cas(template("D", Formal("v")), entry("D", 2), process="p2")
        assert not inserted and existing == entry("D", 1)

    def test_blocking_rd(self, space):
        space.out(entry("A", 1))
        assert space.rd(template("A", ANY), timeout=0.1) == entry("A", 1)

    def test_snapshot(self, space):
        space.out(entry("A", 1))
        assert space.snapshot() == (entry("A", 1),)

    def test_default_inner_space_created(self):
        wrapper = LinearizableTupleSpace()
        assert isinstance(wrapper.inner, AugmentedTupleSpace)


class TestHistoryRecording:
    def test_operations_are_recorded_with_process(self, space, recorder):
        space.out(entry("A", 1), process="p1")
        space.rdp(template("A", ANY), process="p2")
        records = recorder.records()
        assert [r.operation for r in records] == ["out", "rdp"]
        assert [r.process for r in records] == ["p1", "p2"]

    def test_history_is_sequentially_consistent(self, space, recorder):
        space.out(entry("A", 1), process="p1")
        space.cas(template("D", Formal("v")), entry("D", 1), process="p2")
        space.cas(template("D", Formal("v")), entry("D", 2), process="p3")
        space.inp(template("A", ANY), process="p1")
        assert check_sequential_consistency(recorder.records()) == []

    def test_counts_by_process_and_kind(self, space, recorder):
        space.out(entry("A", 1), process="p1")
        space.out(entry("B", 1), process="p1")
        space.rdp(template("A", ANY), process="p2")
        assert recorder.operations_by_process() == {"p1": 2, "p2": 1}
        assert recorder.operations_by_kind() == {"out": 2, "rdp": 1}


class TestWellFormedness:
    def test_reentrant_invocations_rejected_when_enforced(self):
        space = LinearizableTupleSpace(enforce_well_formedness=True)
        # Simulate a pending operation by taking the pending slot directly.
        space._pending.add("p1")
        with pytest.raises(PendingOperationError):
            space.out(entry("A", 1), process="p1")

    def test_sequential_use_is_always_well_formed(self):
        space = LinearizableTupleSpace(enforce_well_formedness=True)
        for i in range(5):
            space.out(entry("A", i), process="p1")
        assert len(space.snapshot()) == 5


class TestConcurrency:
    def test_concurrent_cas_has_exactly_one_winner(self):
        recorder = HistoryRecorder()
        space = LinearizableTupleSpace(history=recorder)
        winners = []
        barrier = threading.Barrier(8)

        def contender(pid):
            barrier.wait()
            inserted, _ = space.cas(
                template("D", Formal("v")), entry("D", pid), process=pid
            )
            if inserted:
                winners.append(pid)

        threads = [threading.Thread(target=contender, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1
        assert len(space.snapshot()) == 1
        assert check_sequential_consistency(recorder.records()) == []

    def test_concurrent_outs_all_land(self):
        space = LinearizableTupleSpace()

        def writer(pid):
            for i in range(20):
                space.out(entry("A", pid, i), process=pid)

        threads = [threading.Thread(target=writer, args=(p,)) for p in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(space.snapshot()) == 80


class TestProcessBoundView:
    def test_bound_view_attributes_operations(self, space, recorder):
        view = space.bind("p7")
        view.out(entry("A", 1))
        view.rdp(template("A", ANY))
        view.cas(template("D", Formal("v")), entry("D", 1))
        assert all(record.process == "p7" for record in recorder.records())

    def test_bound_view_snapshot_and_process(self, space):
        view = space.bind("p7")
        view.out(entry("A", 1))
        assert view.process == "p7"
        assert view.snapshot() == (entry("A", 1),)
