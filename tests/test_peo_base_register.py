"""Tests for the PEO machinery and the Fig. 1 monotonic register."""

import pytest

from repro.errors import AccessDeniedError
from repro.peo import PolicyEnforcedRegister
from repro.peo.base import DeniedResult
from repro.tspace.history import HistoryRecorder


class TestPolicyEnforcedRegister:
    def test_anyone_reads(self):
        register = PolicyEnforcedRegister({"p1"}, initial=10)
        assert register.read(process="p9") == 10

    def test_writer_can_increase(self):
        register = PolicyEnforcedRegister({"p1", "p2"}, initial=0)
        assert register.write(5, process="p1") is True
        assert register.value == 5

    def test_writer_cannot_decrease(self):
        register = PolicyEnforcedRegister({"p1"}, initial=10)
        result = register.write(3, process="p1")
        assert not result
        assert register.value == 10

    def test_non_writer_denied(self):
        register = PolicyEnforcedRegister({"p1"}, initial=0)
        result = register.write(5, process="intruder")
        assert isinstance(result, DeniedResult)
        assert not result
        assert register.value == 0

    def test_denied_result_compares_to_false(self):
        register = PolicyEnforcedRegister({"p1"}, initial=0)
        assert register.write(5, process="intruder") == False  # noqa: E712

    def test_raise_on_deny(self):
        register = PolicyEnforcedRegister({"p1"}, initial=0, raise_on_deny=True)
        with pytest.raises(AccessDeniedError) as excinfo:
            register.write(5, process="intruder")
        assert excinfo.value.operation == "write"
        assert excinfo.value.process == "intruder"

    def test_monotone_sequence_of_writes(self):
        register = PolicyEnforcedRegister({"p1", "p2", "p3"}, initial=0)
        register.write(1, process="p1")
        register.write(5, process="p2")
        assert not register.write(2, process="p3")
        register.write(7, process="p3")
        assert register.read(process="anyone") == 7

    def test_history_records_denials(self):
        history = HistoryRecorder()
        register = PolicyEnforcedRegister({"p1"}, initial=0, history=history)
        register.write(1, process="p1")
        register.write(9, process="intruder")
        register.read(process="p2")
        assert history.denied_count() == 1
        assert history.operations_by_kind() == {"write": 2, "read": 1}

    def test_monitor_statistics_exposed(self):
        register = PolicyEnforcedRegister({"p1"}, initial=0)
        register.write(1, process="p1")
        register.write(2, process="bad")
        assert register.monitor.granted_count == 1
        assert register.monitor.denied_count == 1
        assert register.policy.name == "monotonic-register"

    def test_policy_checks_and_execution_are_atomic(self):
        # A denied write must not change the value even though the policy
        # consults the value while deciding.
        register = PolicyEnforcedRegister({"p1"}, initial=5)
        for attempt in (4, 5, 3, 0, -1):
            register.write(attempt, process="p1")
        assert register.value == 5
