"""Tests for Algorithm 1 — weak consensus."""

import threading

import pytest

from repro.consensus import WeakConsensus, run_consensus
from repro.consensus.base import check_agreement, check_validity
from repro.peo import PEATS
from repro.policy import weak_consensus_policy
from repro.tspace.history import HistoryRecorder
from repro.tuples import entry


class TestSequentialBehaviour:
    def test_first_proposer_wins(self):
        consensus = WeakConsensus.create()
        assert consensus.propose("p1", "blue") == "blue"
        assert consensus.propose("p2", "red") == "blue"
        assert consensus.propose("p3", "green") == "blue"

    def test_is_multivalued(self):
        consensus = WeakConsensus.create()
        assert consensus.propose("p1", ("arbitrary", 42)) == ("arbitrary", 42)

    def test_is_uniform_unknown_processes_may_join(self):
        consensus = WeakConsensus.create()
        consensus.propose("p1", 1)
        assert consensus.propose("a-process-nobody-declared", 2) == 1

    def test_decision_view(self):
        consensus = WeakConsensus.create()
        assert consensus.decision() is None
        consensus.propose("p1", 9)
        assert consensus.decision() == 9

    def test_propose_steps_terminates_in_one_step(self):
        consensus = WeakConsensus.create()
        steps = consensus.propose_steps("p1", "v")
        next(steps)
        with pytest.raises(StopIteration) as stop:
            next(steps)
        assert stop.value.value == "v"

    def test_value_of_faulty_process_may_win(self):
        # Weak validity explicitly allows a faulty proposer's value to win.
        consensus = WeakConsensus.create()
        assert consensus.propose("byzantine", "evil") == "evil"
        assert consensus.propose("honest", "good") == "evil"


class TestRunnerIntegration:
    def test_agreement_and_validity_under_runner(self):
        consensus = WeakConsensus.create()
        proposals = {f"p{i}": f"value-{i}" for i in range(5)}
        run = run_consensus(consensus, proposals)
        assert run.terminated
        outcomes = list(run.outcomes.values())
        assert check_agreement(outcomes)
        assert check_validity(outcomes, proposals.values())

    def test_wait_freedom_single_proposer(self):
        # Wait-freedom: terminates even if every other process is silent.
        consensus = WeakConsensus.create()
        run = run_consensus(consensus, {"lonely": 3})
        assert run.terminated and run.decision() == 3


class TestConcurrentBehaviour:
    def test_threaded_agreement(self):
        consensus = WeakConsensus.create()
        decisions = []
        lock = threading.Lock()

        def worker(pid):
            decided = consensus.propose(pid, pid)
            with lock:
                decisions.append(decided)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(10)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(decisions)) == 1
        assert decisions[0] in range(10)


class TestMemoryAndOperations:
    def test_exactly_one_tuple_stored(self):
        consensus = WeakConsensus.create()
        for pid in range(6):
            consensus.propose(pid, pid)
        assert len(consensus.space.snapshot()) == 1

    def test_one_operation_per_process(self):
        history = HistoryRecorder()
        space = PEATS(weak_consensus_policy(), history=history)
        consensus = WeakConsensus(space)
        for pid in range(4):
            consensus.propose(pid, pid)
        counts = history.operations_by_process()
        assert all(count == 1 for count in counts.values())

    def test_byzantine_cannot_preload_decision_with_out(self):
        space = PEATS(weak_consensus_policy())
        assert not space.out(entry("DECISION", "evil"), process="byz")
        consensus = WeakConsensus(space)
        assert consensus.propose("honest", "good") == "good"
