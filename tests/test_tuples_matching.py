"""Unit tests for the matching relation and formal-field binding."""

import pytest

from repro.errors import MatchTypeError
from repro.tuples import ANY, Formal, bind, entry, matches, template


class TestMatches:
    def test_exact_match(self):
        assert matches(entry("A", 1), template("A", 1))

    def test_mismatch_on_value(self):
        assert not matches(entry("A", 1), template("A", 2))

    def test_mismatch_on_arity(self):
        assert not matches(entry("A", 1), template("A", 1, 2))

    def test_wildcard_matches_anything(self):
        assert matches(entry("A", 1), template("A", ANY))
        assert matches(entry("A", "x"), template("A", ANY))
        assert matches(entry("A", frozenset({3})), template("A", ANY))

    def test_formal_matches_and_respects_type(self):
        assert matches(entry("A", 1), template("A", Formal("v")))
        assert matches(entry("A", 1), template("A", Formal("v", int)))
        assert not matches(entry("A", "1"), template("A", Formal("v", int)))

    def test_bool_and_int_are_distinct(self):
        assert not matches(entry("A", True), template("A", 1))
        assert not matches(entry("A", 1), template("A", True))
        assert matches(entry("A", True), template("A", True))

    def test_entry_accepted_as_pattern(self):
        assert matches(entry("A", 1), entry("A", 1))
        assert not matches(entry("A", 1), entry("A", 2))

    def test_template_not_accepted_as_candidate(self):
        with pytest.raises(MatchTypeError):
            matches(template("A", ANY), template("A", ANY))

    def test_non_tuple_operands_rejected(self):
        with pytest.raises(MatchTypeError):
            matches("A", template("A"))
        with pytest.raises(MatchTypeError):
            matches(entry("A"), "A")

    def test_multi_field_paper_example(self):
        # The strong-consensus PROPOSE lookup: ⟨PROPOSE, p_j, ?v⟩.
        proposal = entry("PROPOSE", 2, 1)
        assert matches(proposal, template("PROPOSE", 2, Formal("v")))
        assert not matches(proposal, template("PROPOSE", 3, Formal("v")))


class TestBind:
    def test_bind_returns_formal_values(self):
        bindings = bind(entry("PROPOSE", 2, 1), template("PROPOSE", 2, Formal("v")))
        assert bindings == {"v": 1}

    def test_bind_multiple_formals(self):
        bindings = bind(
            entry("SEQ", 4, "op"), template("SEQ", Formal("pos"), Formal("inv"))
        )
        assert bindings == {"pos": 4, "inv": "op"}

    def test_bind_returns_none_on_mismatch(self):
        assert bind(entry("A", 1), template("B", Formal("v"))) is None

    def test_bind_without_formals_is_empty(self):
        assert bind(entry("A", 1), template("A", ANY)) == {}

    def test_bind_is_the_formal_field_semantics_of_the_paper(self):
        # "The variable in a formal field is set to the value in the
        # corresponding field of the entry matched to the template."
        decision = entry("DECISION", "blue")
        bindings = bind(decision, template("DECISION", Formal("d")))
        assert bindings["d"] == "blue"
