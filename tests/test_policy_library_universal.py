"""Tests for the universal-construction policies of Figs. 7 and 8."""

import pytest

from repro.policy import lock_free_universal_policy, wait_free_universal_policy
from repro.policy.invocation import Invocation
from repro.tspace import AugmentedTupleSpace
from repro.tuples import ANY, Formal, entry, template


def evaluate(policy, space, process, operation, *arguments):
    allowed, _, _ = policy.evaluate(
        Invocation(process=process, operation=operation, arguments=tuple(arguments)), space
    )
    return allowed


class TestLockFreePolicy:
    """Fig. 7: SEQ tuples must be appended contiguously."""

    policy = lock_free_universal_policy()

    def test_reads_allowed(self):
        space = AugmentedTupleSpace()
        assert evaluate(self.policy, space, "p", "rdp", template("SEQ", 1, Formal("inv")))

    def test_first_position_allowed_on_empty_space(self):
        space = AugmentedTupleSpace()
        assert evaluate(
            self.policy, space, "p", "cas",
            template("SEQ", 1, Formal("x")), entry("SEQ", 1, "op-a"),
        )

    def test_gap_denied(self):
        space = AugmentedTupleSpace()
        assert not evaluate(
            self.policy, space, "p", "cas",
            template("SEQ", 3, Formal("x")), entry("SEQ", 3, "op-a"),
        )

    def test_next_position_allowed_after_previous_exists(self):
        space = AugmentedTupleSpace()
        space.out(entry("SEQ", 1, "op-a"))
        assert evaluate(
            self.policy, space, "p", "cas",
            template("SEQ", 2, Formal("x")), entry("SEQ", 2, "op-b"),
        )

    def test_template_and_entry_positions_must_agree(self):
        space = AugmentedTupleSpace()
        space.out(entry("SEQ", 1, "op-a"))
        assert not evaluate(
            self.policy, space, "p", "cas",
            template("SEQ", 1, Formal("x")), entry("SEQ", 2, "op-b"),
        )

    def test_non_positive_or_non_integer_positions_denied(self):
        space = AugmentedTupleSpace()
        assert not evaluate(
            self.policy, space, "p", "cas",
            template("SEQ", 0, Formal("x")), entry("SEQ", 0, "op"),
        )
        assert not evaluate(
            self.policy, space, "p", "cas",
            template("SEQ", "1", Formal("x")), entry("SEQ", "1", "op"),
        )
        assert not evaluate(
            self.policy, space, "p", "cas",
            template("SEQ", True, Formal("x")), entry("SEQ", True, "op"),
        )

    def test_formal_invocation_field_required(self):
        space = AugmentedTupleSpace()
        assert not evaluate(
            self.policy, space, "p", "cas",
            template("SEQ", 1, "op-a"), entry("SEQ", 1, "op-a"),
        )

    def test_out_and_inp_denied(self):
        space = AugmentedTupleSpace()
        assert not evaluate(self.policy, space, "p", "out", entry("SEQ", 1, "op"))
        assert not evaluate(self.policy, space, "p", "inp", template("SEQ", 1, ANY))


class TestWaitFreePolicy:
    """Fig. 8: announcements are per-process and helping is enforced."""

    processes = ("a", "b", "c", "d")  # indices 0..3
    policy = wait_free_universal_policy(processes)

    def test_needs_at_least_one_process(self):
        with pytest.raises(ValueError):
            wait_free_universal_policy([])

    def test_duplicate_processes_rejected(self):
        with pytest.raises(ValueError):
            wait_free_universal_policy(["a", "a"])

    def test_announce_own_index_allowed(self):
        space = AugmentedTupleSpace()
        assert evaluate(self.policy, space, "b", "out", entry("ANN", 1, "inv-b"))

    def test_announce_other_index_denied(self):
        space = AugmentedTupleSpace()
        assert not evaluate(self.policy, space, "b", "out", entry("ANN", 0, "inv-x"))

    def test_remove_own_announcement_allowed(self):
        space = AugmentedTupleSpace()
        space.out(entry("ANN", 1, "inv-b"))
        assert evaluate(self.policy, space, "b", "inp", template("ANN", 1, "inv-b"))

    def test_remove_other_announcement_denied(self):
        space = AugmentedTupleSpace()
        space.out(entry("ANN", 0, "inv-a"))
        assert not evaluate(self.policy, space, "b", "inp", template("ANN", 0, ANY))

    def test_remove_with_undefined_index_denied(self):
        space = AugmentedTupleSpace()
        assert not evaluate(self.policy, space, "b", "inp", template("ANN", ANY, ANY))

    def test_contiguity_still_enforced(self):
        space = AugmentedTupleSpace()
        assert not evaluate(
            self.policy, space, "a", "cas",
            template("SEQ", 2, Formal("x")), entry("SEQ", 2, "inv"),
        )

    def test_thread_allowed_when_preferred_has_not_announced(self):
        # Position 1: preferred index = 1 % 4 = 1 (process "b").
        space = AugmentedTupleSpace()
        assert evaluate(
            self.policy, space, "a", "cas",
            template("SEQ", 1, Formal("x")), entry("SEQ", 1, "inv-a"),
        )

    def test_thread_denied_when_preferred_announcement_pending(self):
        space = AugmentedTupleSpace()
        space.out(entry("ANN", 1, "inv-b"))
        assert not evaluate(
            self.policy, space, "a", "cas",
            template("SEQ", 1, Formal("x")), entry("SEQ", 1, "inv-a"),
        )

    def test_thread_allowed_when_helping_preferred(self):
        space = AugmentedTupleSpace()
        space.out(entry("ANN", 1, "inv-b"))
        assert evaluate(
            self.policy, space, "a", "cas",
            template("SEQ", 1, Formal("x")), entry("SEQ", 1, "inv-b"),
        )

    def test_thread_allowed_when_preferred_announcement_already_threaded(self):
        space = AugmentedTupleSpace()
        space.out(entry("ANN", 1, "inv-b"))
        space.out(entry("SEQ", 1, "inv-b"))
        # Position 5 also prefers index 1; its announcement is already
        # threaded, so any invocation may take position 5... once positions
        # 2-4 exist (contiguity).
        for pos, inv in ((2, "x2"), (3, "x3"), (4, "x4")):
            space.out(entry("SEQ", pos, inv))
        assert evaluate(
            self.policy, space, "a", "cas",
            template("SEQ", 5, Formal("x")), entry("SEQ", 5, "inv-a2"),
        )
